//! Failure isolation: the poison-tolerant service executor.
//!
//! The plain executor ([`crate::run_service`]) has one failure mode:
//! the first unit the divergence guard rejects aborts the whole run,
//! and every request queued behind it starves. This module gives the
//! service the opposite contract — **no request can take down the
//! service** — through three mechanisms, all off by default
//! ([`IsolationConfig`]) and all journal-derivable so a killed run
//! resumes bit-for-bit:
//!
//! 1. **Retry ladder** ([`ladder_policy`]): a unit the guard rejects is
//!    re-tried under progressively tightened policies — each rung
//!    halves both the ascent-LR scale and the drift budget — up to
//!    `unit_retries` rungs past the base policy.
//! 2. **Batch bisection** ([`isolate_poison`]): when no rung serves a
//!    coalesced unit, the member set is bisected to isolate the poison
//!    members; only those are quarantined to the dead-letter set
//!    (typed QUARANTINED journal records), and the survivors are
//!    served normally.
//! 3. **Per-tenant circuit breakers** ([`TenantBreaker`]): tenants
//!    whose requests keep getting quarantined trip an
//!    CLOSED → OPEN → HALF-OPEN breaker (modeled on qd-fed's
//!    per-client health tracking) and have their queued work shed to
//!    FAILED records instead of burning ladder probes on it.
//!
//! # Probe-first execution
//!
//! The executor never lets the real (journaled) execution diverge.
//! Every ladder rung is first evaluated as a **side-effect-free
//! probe** ([`qd_core::QuickDrop::probe_unit`]) from the unit's
//! pre-state; the real execution runs only for a rung whose probe
//! accepted, and a probe acceptance guarantees the identical real
//! operation sequence accepts too. Three properties fall out:
//!
//! - partially-applied units in the journal can only come from
//!   crashes, never from divergence — so the qd-core resume protocol
//!   needs no rollback machinery;
//! - the winning rung is **derivable**: it is a pure function of the
//!   unit's pre-state, which the RECEIVED records pin. A resumed run
//!   re-runs the probes and lands on the same rung without the rung
//!   ever being serialized;
//! - quarantining never touches the model: a fully-quarantined unit's
//!   QUARANTINED records carry the unchanged pre-unit state.
//!
//! # Execution = resume
//!
//! The executor appends a unit's atomic RECEIVED set itself and then
//! drives *all* model work through
//! [`qd_core::QuickDrop::resume_requests_until`] — a fresh unit and a
//! crash-resumed one execute identical code from identical
//! journal-derived state, which is what makes the kill-anywhere
//! crash matrix in `tests/poison.rs` pass bit-for-bit.

use crate::plan::{build_plan, Plan, PlannedBatch};
use crate::service::{run_plain, ChaosKill, ServiceError, ServiceRun};
use crate::stats::ServeStats;
use crate::ServeConfig;
use qd_core::{
    BatchPreempt, FailReason, JournalRecord, QuickDrop, RequestJournal, RequestState, ResumeRun,
    ServeError,
};
use qd_fed::Federation;
use qd_tensor::rng::Rng;
use qd_unlearn::{ForgetSet, GuardPolicy, UnlearnRequest};
use std::collections::BTreeMap;

/// Highest retry-ladder rung accepted: beyond 2^-16 the halved
/// ascent-LR scale is numerically dead anyway.
pub const MAX_UNIT_RETRIES: u32 = 16;

/// Failure-isolation knobs. The default is everything **off**, and the
/// executor with an all-off config routes through the exact plain
/// path — journal bytes, model bits and stats unchanged from a build
/// without this module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationConfig {
    /// Retry-ladder rungs past the base policy (rung k halves the
    /// ascent-LR scale and drift budget k times). `0` = no ladder.
    pub unit_retries: u32,
    /// Bisect diverging coalesced units to isolate poison members
    /// instead of quarantining the whole unit.
    pub bisect: bool,
    /// Quarantined units from one tenant before its breaker trips
    /// OPEN. `0` = breaker disabled.
    pub breaker_trip: u32,
    /// Units an OPEN breaker sheds before probing the tenant again
    /// (HALF-OPEN). Required ≥ 1 when `breaker_trip` > 0.
    pub breaker_cooldown: u32,
}

impl IsolationConfig {
    /// True when any isolation mechanism is enabled. Inactive configs
    /// take the plain path (bit-for-bit the pre-isolation behaviour).
    pub fn active(&self) -> bool {
        self.unit_retries > 0 || self.bisect || self.breaker_trip > 0
    }

    /// Rejects nonsensical combinations.
    ///
    /// # Errors
    ///
    /// A message naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_retries > MAX_UNIT_RETRIES {
            return Err(format!(
                "unit retries capped at {MAX_UNIT_RETRIES}, got {}",
                self.unit_retries
            ));
        }
        if self.breaker_trip > 0 && self.breaker_cooldown == 0 {
            return Err("a breaker trip threshold needs a cooldown of at least 1 unit".to_string());
        }
        Ok(())
    }
}

/// The retry ladder: rung 0 is the base policy; each higher rung
/// halves both the ascent-LR scale (gentler ascent) and the drift
/// budget (stricter acceptance), per the deterministic tightening
/// schedule. A disabled drift budget (`0.0`) stays disabled.
pub fn ladder_policy(base: &GuardPolicy, rung: u32) -> GuardPolicy {
    let tighten = 0.5f32.powi(rung.min(MAX_UNIT_RETRIES) as i32);
    GuardPolicy {
        drift_budget: base.drift_budget * tighten,
        ascent_lr_scale: base.ascent_lr_scale * tighten,
        ..*base
    }
}

/// Bisects `members` into the subset the predicate blames: an element
/// ends up in the result iff every probed subset containing it failed
/// down to the singleton. Called with a `probe` that answers "would
/// this subset serve cleanly?", the result is the poison member set.
///
/// The recursion prunes aggressively: a passing half is exonerated
/// wholesale (`probe` is monotone for per-member poison — a subset
/// without poison members passes). When *both* halves of a failing set
/// pass — an interaction-only failure bisection cannot localize — the
/// result is empty and the caller falls back to quarantining the whole
/// set.
pub fn isolate_poison<T: Copy>(members: &[T], probe: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    // The recursion only reaches a singleton through a *failed* probe
    // of that singleton, so the base case convicts without re-probing;
    // the top-level entry has no such evidence yet and must probe.
    if let [one] = members {
        return if probe(members) {
            Vec::new()
        } else {
            vec![*one]
        };
    }
    fn go<T: Copy>(set: &[T], probe: &mut dyn FnMut(&[T]) -> bool, out: &mut Vec<T>) {
        match set {
            [] => {}
            [one] => out.push(*one),
            _ => {
                let (left, right) = set.split_at(set.len() / 2);
                match (probe(left), probe(right)) {
                    // Interaction-only failure: neither half is
                    // individually to blame; report nothing from here.
                    (true, true) => {}
                    (true, false) => go(right, probe, out),
                    (false, true) => go(left, probe, out),
                    (false, false) => {
                        go(left, probe, out);
                        go(right, probe, out);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    go(members, probe, &mut out);
    out
}

/// Per-tenant circuit breaker (CLOSED → OPEN → HALF-OPEN), modeled on
/// qd-fed's per-client health tracking. Strikes accumulate per
/// quarantined unit; at `trip` strikes the breaker OPENs and the
/// tenant's queued members are shed to FAILED for `cooldown` units;
/// then HALF-OPEN lets one unit through — served closes the breaker,
/// another quarantine re-opens it.
///
/// Nothing here is serialized: the state is a pure fold over the
/// journal's per-unit outcomes, so a resumed run replays the completed
/// units and lands on the identical state (`TenantBreaker::replay`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantBreaker {
    trip: u32,
    cooldown: u32,
    strikes: Vec<u32>,
    /// Remaining shed units; > 0 means OPEN.
    cooldowns: Vec<u32>,
    half_open: Vec<bool>,
}

impl TenantBreaker {
    /// A breaker per tenant, all CLOSED. `trip == 0` disables tripping
    /// entirely.
    pub fn new(tenants: usize, trip: u32, cooldown: u32) -> TenantBreaker {
        TenantBreaker {
            trip,
            cooldown,
            strikes: vec![0; tenants],
            cooldowns: vec![0; tenants],
            half_open: vec![false; tenants],
        }
    }

    /// Is tenant `t`'s breaker OPEN (its members get shed)?
    pub fn is_open(&self, t: usize) -> bool {
        self.cooldowns.get(t).is_some_and(|&c| c > 0)
    }

    /// Advances the unit clock: every OPEN breaker's cooldown
    /// decrements, and one that reaches zero goes HALF-OPEN.
    pub fn tick(&mut self) {
        for (cooldown, half_open) in self.cooldowns.iter_mut().zip(&mut self.half_open) {
            if *cooldown > 0 {
                *cooldown -= 1;
                if *cooldown == 0 {
                    *half_open = true;
                }
            }
        }
    }

    /// A unit of tenant `t`'s was quarantined: strike, and trip (or
    /// re-open a HALF-OPEN probe that failed).
    fn record_quarantine(&mut self, t: usize) {
        if self.trip == 0 {
            return;
        }
        let (Some(strikes), Some(cooldown), Some(half_open)) = (
            self.strikes.get_mut(t),
            self.cooldowns.get_mut(t),
            self.half_open.get_mut(t),
        ) else {
            return;
        };
        if *half_open {
            *half_open = false;
            *cooldown = self.cooldown;
            *strikes = 0;
        } else {
            *strikes += 1;
            if *strikes >= self.trip {
                *cooldown = self.cooldown;
                *strikes = 0;
            }
        }
    }

    /// A unit of tenant `t`'s was served to RECOVERED: clear strikes
    /// (and close a HALF-OPEN probe that succeeded).
    fn record_served(&mut self, t: usize) {
        if let (Some(strikes), Some(half_open)) =
            (self.strikes.get_mut(t), self.half_open.get_mut(t))
        {
            *strikes = 0;
            *half_open = false;
        }
    }

    /// Applies one completed unit's outcomes, in the canonical order
    /// (quarantines before serves, member order within each): the same
    /// fold live execution and journal replay both use.
    fn feed(&mut self, unit: &PlannedBatch, quarantined: &[usize], shed: &[usize]) {
        for &i in quarantined {
            if let Some(t) = owner_tenant(unit, i) {
                self.record_quarantine(t);
            }
        }
        for i in 0..unit.members.len() {
            if quarantined.contains(&i) || shed.contains(&i) {
                continue;
            }
            if let Some(t) = owner_tenant(unit, i) {
                self.record_served(t);
            }
        }
    }

    /// Rebuilds breaker state from the journal-derived outcomes of the
    /// leading completed units — the resume path. Because live
    /// execution applies [`TenantBreaker::feed`] with exactly the
    /// outcomes the journal certifies, the replayed state is identical
    /// to the state the killed process held.
    pub(crate) fn replay(&mut self, plan: &Plan, frontier: &Frontier) {
        for (unit, progress) in plan.batches.iter().zip(&frontier.units).take(frontier.done) {
            self.tick();
            let quarantined: Vec<usize> = progress.quarantined.iter().map(|&(i, _)| i).collect();
            self.feed(unit, &quarantined, &progress.failed);
        }
    }

    /// Human-readable state of tenant `t`: `"closed"`, `"open(n)"` or
    /// `"half-open"`.
    pub fn label(&self, t: usize) -> String {
        match (self.cooldowns.get(t), self.half_open.get(t)) {
            (Some(&c), _) if c > 0 => format!("open({c})"),
            (_, Some(true)) => "half-open".to_string(),
            _ => "closed".to_string(),
        }
    }

    /// [`TenantBreaker::label`] for every tenant.
    pub fn labels(&self) -> Vec<String> {
        (0..self.strikes.len()).map(|t| self.label(t)).collect()
    }
}

/// The tenant accountable for a unit member: the first rider's tenant
/// (coalescing merges identical requests, so the first arrival owns
/// the ascent; later riders are free-riders).
fn owner_tenant(unit: &PlannedBatch, member: usize) -> Option<usize> {
    unit.riders
        .get(member)
        .and_then(|r| r.first())
        .map(|tag| tag.tenant)
}

/// Journal-derived progress of one planned unit.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitProgress {
    /// The unit's atomic RECEIVED set is durable.
    pub started: bool,
    /// Sequence number per member position (full once `started`).
    pub received_seqs: Vec<u64>,
    /// Member positions isolated to QUARANTINED, with the typed reason.
    pub quarantined: Vec<(usize, FailReason)>,
    /// Member positions shed to FAILED.
    pub failed: Vec<usize>,
    /// Member positions served to RECOVERED.
    pub recovered: Vec<usize>,
}

impl UnitProgress {
    /// Every member holds a terminal state.
    fn complete(&self, members: usize) -> bool {
        self.received_seqs.len() == members
            && self.recovered.len() + self.quarantined.len() + self.failed.len() == members
    }
}

/// Where a journal stands relative to a plan.
#[derive(Debug, Clone)]
pub(crate) struct Frontier {
    /// Per-unit progress, index-aligned with `plan.batches`.
    pub units: Vec<UnitProgress>,
    /// Leading units whose every member is terminal.
    pub done: usize,
}

impl Frontier {
    /// The dead-letter set: every quarantined member's request.
    pub fn dead_letter(&self, plan: &Plan) -> ForgetSet {
        let mut set = ForgetSet::empty();
        for (unit, progress) in plan.batches.iter().zip(&self.units) {
            for &(i, _) in &progress.quarantined {
                if let Some(&request) = unit.members.get(i) {
                    set.insert(request);
                }
            }
        }
        set
    }
}

fn foreign(msg: String) -> ServiceError {
    ServiceError::ForeignJournal(msg)
}

/// Aligns the journal's records with the plan's units, record by
/// record: RECEIVED records must arrive in plan order (unit by unit,
/// member by member — each unit's set is one atomic frame, so its
/// records are contiguous), and every later record must reference a
/// sequence number some RECEIVED record introduced. Anything else —
/// RELEARNED records, unknown sequence numbers, requests that do not
/// match the plan — means the journal belongs to some other deployment
/// or config, and progress counting on it would silently corrupt the
/// run: the typed [`ServiceError::ForeignJournal`] refuses it up
/// front.
pub(crate) fn map_journal(plan: &Plan, journal: &RequestJournal) -> Result<Frontier, ServiceError> {
    let mut units: Vec<UnitProgress> = plan
        .batches
        .iter()
        .map(|_| UnitProgress::default())
        .collect();
    // BTreeMap, not HashMap: serve-crate iteration order is
    // lint-enforced deterministic.
    let mut seq_owner: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    let mut next_unit = 0usize;
    let mut next_member = 0usize;
    for record in journal.records() {
        match record.state {
            RequestState::Received => {
                let Some(unit) = plan.batches.get(next_unit) else {
                    return Err(foreign(format!(
                        "RECEIVED record seq {} is beyond the plan's {} units",
                        record.seq,
                        plan.batches.len()
                    )));
                };
                let expected = unit.members.get(next_member).copied();
                if expected != Some(record.request) {
                    return Err(foreign(format!(
                        "RECEIVED record seq {} carries {}, but plan unit {} member {} is {}",
                        record.seq,
                        record.request,
                        next_unit,
                        next_member,
                        expected.map_or_else(|| "absent".to_string(), |r| r.to_string()),
                    )));
                }
                seq_owner.insert(record.seq, (next_unit, next_member));
                if let Some(progress) = units.get_mut(next_unit) {
                    progress.started = true;
                    progress.received_seqs.push(record.seq);
                }
                next_member += 1;
                if next_member == unit.members.len() {
                    next_unit += 1;
                    next_member = 0;
                }
            }
            RequestState::Relearned => {
                return Err(foreign(format!(
                    "RELEARNED record seq {} — relearn streams never come from this service",
                    record.seq
                )));
            }
            state => {
                if next_member != 0 {
                    return Err(foreign(format!(
                        "{state} record seq {} interleaves unit {next_unit}'s RECEIVED set",
                        record.seq
                    )));
                }
                let Some(&(u, m)) = seq_owner.get(&record.seq) else {
                    return Err(foreign(format!(
                        "{state} record references unknown seq {}",
                        record.seq
                    )));
                };
                let Some(progress) = units.get_mut(u) else {
                    continue;
                };
                match state {
                    RequestState::Unlearned => {}
                    RequestState::Recovered => progress.recovered.push(m),
                    RequestState::Quarantined => progress
                        .quarantined
                        .push((m, record.reason.unwrap_or(FailReason::Diverged))),
                    RequestState::Failed => progress.failed.push(m),
                    RequestState::Received | RequestState::Relearned => {}
                }
            }
        }
    }
    if next_member != 0 {
        return Err(foreign(format!(
            "journal ends inside unit {next_unit}'s RECEIVED set"
        )));
    }
    let done = plan
        .batches
        .iter()
        .zip(&units)
        .take_while(|(unit, progress)| progress.complete(unit.members.len()))
        .count();
    Ok(Frontier { units, done })
}

/// How one unit's serve attempt ended.
enum UnitRun {
    /// Every member reached a terminal state (RECOVERED, QUARANTINED
    /// or FAILED); `quarantined`/`shed` list the member positions that
    /// did not recover.
    Done {
        quarantined: Vec<usize>,
        shed: Vec<usize>,
    },
    /// A [`ChaosKill`] boundary fired; the journal holds the progress.
    Preempted,
}

/// Serves one planned unit under failure isolation: shed OPEN-breaker
/// tenants to FAILED, probe the retry ladder, bisect and quarantine
/// what no rung serves, execute the survivors via the resume protocol.
/// `progress` carries the journal-derived state of a unit a killed run
/// left in flight.
#[allow(clippy::too_many_arguments)]
fn serve_unit(
    qd: &mut QuickDrop,
    fed: &mut Federation,
    journal: &mut RequestJournal,
    unit: &PlannedBatch,
    unit_index: usize,
    policy: &GuardPolicy,
    iso: &IsolationConfig,
    breaker: &TenantBreaker,
    rng: &mut Rng,
    kill: Option<ChaosKill>,
    progress: Option<&UnitProgress>,
) -> Result<UnitRun, ServiceError> {
    let unit_kill = kill.filter(|k| k.unit_index == unit_index);
    let kill_at = |b: BatchPreempt| unit_kill.is_some_and(|k| k.boundary == b);
    let n = unit.members.len();

    let mut quarantined: Vec<usize>;
    let shed: Vec<usize>;
    let received_seqs: Vec<u64>;
    let batch_id;
    let pre_rng;
    let pre_global;
    match progress {
        Some(p) => {
            // A killed run left this unit in flight: its RECEIVED set
            // (and any QUARANTINED/FAILED frames) are already durable.
            // The pre-unit state every probe needs is pinned by the
            // RECEIVED records.
            quarantined = p.quarantined.iter().map(|&(i, _)| i).collect();
            shed = p.failed.clone();
            received_seqs = p.received_seqs.clone();
            let first = journal
                .records()
                .iter()
                .find(|r| {
                    r.state == RequestState::Received && received_seqs.first() == Some(&r.seq)
                })
                .cloned();
            let Some(first) = first else {
                return Err(foreign(format!(
                    "unit {unit_index} is started but its RECEIVED records are missing"
                )));
            };
            batch_id = first.batch;
            pre_rng = first.rng;
            pre_global = first.global;
        }
        None => {
            let id = journal.next_batch_id();
            let seq0 = journal.next_seq();
            pre_rng = rng.state();
            pre_global = fed.global().to_vec();
            // Always batch-form (even singletons): the resume protocol
            // then treats every executor unit uniformly.
            let frame: Vec<JournalRecord> = unit
                .members
                .iter()
                .enumerate()
                .map(|(i, &request)| JournalRecord {
                    seq: seq0 + i as u64,
                    request,
                    state: RequestState::Received,
                    rng: pre_rng.clone(),
                    global: pre_global.clone(),
                    guard: None,
                    batch: Some(id),
                    reason: None,
                })
                .collect();
            received_seqs = frame.iter().map(|r| r.seq).collect();
            journal.append_all(frame).map_err(ServeError::from)?;
            if kill_at(BatchPreempt::Received) {
                return Ok(UnitRun::Preempted);
            }
            batch_id = Some(id);
            quarantined = Vec::new();
            // Shed decision: members whose owning tenant's breaker is
            // OPEN never reach the model. Derived from breaker state,
            // which is itself a fold over the journal — so a resumed
            // run re-derives the identical decision (and then simply
            // reads the FAILED records instead of re-deciding).
            let to_shed: Vec<usize> = (0..n)
                .filter(|&i| owner_tenant(unit, i).is_some_and(|t| breaker.is_open(t)))
                .collect();
            if !to_shed.is_empty() {
                let frame: Vec<JournalRecord> = to_shed
                    .iter()
                    .filter_map(|&i| {
                        unit.members.get(i).map(|&request| JournalRecord {
                            seq: received_seqs.get(i).copied().unwrap_or_default(),
                            request,
                            state: RequestState::Failed,
                            rng: pre_rng.clone(),
                            global: pre_global.clone(),
                            guard: None,
                            batch: batch_id,
                            reason: Some(FailReason::Shed),
                        })
                    })
                    .collect();
                journal.append_all(frame).map_err(ServeError::from)?;
                if kill_at(BatchPreempt::Failed) {
                    return Ok(UnitRun::Preempted);
                }
            }
            shed = to_shed;
        }
    }

    let mut active: Vec<usize> = (0..n)
        .filter(|i| !shed.contains(i) && !quarantined.iter().any(|q| q == i))
        .collect();
    // In-execution boundaries are the resume protocol's to honor; the
    // executor owns the Received/Failed/Quarantined ones above.
    let exec_preempt = unit_kill
        .map(|k| k.boundary)
        .filter(|b| matches!(b, BatchPreempt::Unlearned(_) | BatchPreempt::Recovered));

    loop {
        if active.is_empty() {
            return Ok(UnitRun::Done { quarantined, shed });
        }
        let requests: Vec<UnlearnRequest> = active
            .iter()
            .filter_map(|&i| unit.members.get(i).copied())
            .collect();
        let probe_rng = Rng::from_state(&pre_rng);
        let mut winning = None;
        for rung in 0..=iso.unit_retries {
            fed.set_global(pre_global.clone());
            if qd.probe_unit(fed, &requests, &ladder_policy(policy, rung), &probe_rng) {
                winning = Some(rung);
                break;
            }
        }
        if let Some(rung) = winning {
            // The probe accepted, so the identical real execution
            // accepts; resume_requests_until restores the journal tail
            // (marks, model, RNG) itself and runs the remaining
            // members under the winning rung.
            let run = qd.resume_requests_until(
                fed,
                journal,
                Some(&ladder_policy(policy, rung)),
                rng,
                exec_preempt,
            )?;
            return Ok(match run {
                ResumeRun::Complete(_) => UnitRun::Done { quarantined, shed },
                ResumeRun::Preempted { .. } => UnitRun::Preempted,
            });
        }
        // No rung serves the active set. Isolate the poison members —
        // by bisection probes when enabled and the set is divisible —
        // and quarantine them with a typed reason.
        let poison: Vec<usize> = if active.len() > 1 && iso.bisect {
            let found = isolate_poison(&active, &mut |subset: &[usize]| {
                let sub: Vec<UnlearnRequest> = subset
                    .iter()
                    .filter_map(|&i| unit.members.get(i).copied())
                    .collect();
                (0..=iso.unit_retries).any(|rung| {
                    fed.set_global(pre_global.clone());
                    qd.probe_unit(fed, &sub, &ladder_policy(policy, rung), &probe_rng)
                })
            });
            if found.is_empty() {
                // Interaction-only failure: bisection cannot localize.
                active.clone()
            } else {
                found
            }
        } else {
            active.clone()
        };
        let reason = if poison.len() < active.len() {
            FailReason::PoisonMember
        } else if iso.unit_retries > 0 {
            FailReason::RetriesExhausted
        } else {
            FailReason::Diverged
        };
        // Probes are side-effect-free, so the journal tail still holds
        // the pre-unit state; the QUARANTINED records re-certify it
        // (terminal: these members never touched the model).
        let (tail_rng, tail_global) = journal.last().map_or_else(
            || (pre_rng.clone(), pre_global.clone()),
            |r| (r.rng.clone(), r.global.clone()),
        );
        let frame: Vec<JournalRecord> = poison
            .iter()
            .filter_map(|&i| {
                unit.members.get(i).map(|&request| JournalRecord {
                    seq: received_seqs.get(i).copied().unwrap_or_default(),
                    request,
                    state: RequestState::Quarantined,
                    rng: tail_rng.clone(),
                    global: tail_global.clone(),
                    guard: None,
                    batch: batch_id,
                    reason: Some(reason),
                })
            })
            .collect();
        journal.append_all(frame).map_err(ServeError::from)?;
        quarantined.extend(poison.iter().copied());
        if kill_at(BatchPreempt::Quarantined) {
            return Ok(UnitRun::Preempted);
        }
        active.retain(|i| !poison.contains(i));
    }
}

/// Folds the journal's terminal outcomes into the plan-derived stats:
/// `served` becomes the riders of journal-certified RECOVERED members
/// (not the plan's promise), quarantined/shed riders come from the
/// QUARANTINED/FAILED records, `pending` is whatever the journal has
/// not made terminal yet (nonzero exactly on preempted runs), and the
/// breaker column reports the final per-tenant fold when one is in
/// force. Everything here is a pure function of (plan, journal,
/// breaker fold), so a resumed run reports bit-for-bit the stats of an
/// unfailed one — and the accounting identity `admitted = served +
/// quarantined + shed + pending` holds even mid-crash.
pub(crate) fn apply_failure_stats(
    stats: &mut ServeStats,
    plan: &Plan,
    frontier: &Frontier,
    breaker: Option<&TenantBreaker>,
) {
    let mut served = 0u64;
    let mut quarantined = 0u64;
    let mut shed = 0u64;
    for (unit, progress) in plan.batches.iter().zip(&frontier.units) {
        if !progress.quarantined.is_empty() {
            stats.retried_units += 1;
        }
        if progress
            .quarantined
            .iter()
            .any(|&(_, reason)| reason == FailReason::PoisonMember)
        {
            stats.bisected_units += 1;
        }
        for &i in &progress.recovered {
            served += unit.riders.get(i).map_or(0, |r| r.len() as u64);
        }
        for &(i, _) in &progress.quarantined {
            quarantined += unit.riders.get(i).map_or(0, |r| r.len() as u64);
        }
        for &i in &progress.failed {
            shed += unit.riders.get(i).map_or(0, |r| r.len() as u64);
        }
    }
    stats.quarantined = quarantined;
    stats.shed = shed;
    stats.served = served;
    stats.pending = stats.admitted.saturating_sub(served + quarantined + shed);
    if let Some(breaker) = breaker {
        stats.breaker = breaker.labels();
    }
}

/// Journal↔plan consistency, summarized for external harnesses.
///
/// Produced by [`frontier_summary`], which runs the same typed
/// alignment the executor itself resumes from (`map_journal`): a
/// journal that cannot be aligned with the plan is a
/// [`ServiceError::ForeignJournal`], and an aligned one yields these
/// counts for invariant checking (qd-chaos's journal-frontier
/// invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierSummary {
    /// Units the plan schedules.
    pub units: usize,
    /// Leading units whose every member holds a terminal state.
    pub done: usize,
    /// Members with a durable RECEIVED record.
    pub received: usize,
    /// Members served to RECOVERED.
    pub recovered: usize,
    /// Members isolated to QUARANTINED.
    pub quarantined: usize,
    /// Members shed to FAILED.
    pub failed: usize,
}

/// Aligns `journal` against the plan `cfg` produces and summarizes the
/// frontier — the read-only entry point chaos harnesses check journal
/// consistency through.
///
/// # Errors
///
/// [`ServiceError::Plan`] for an unrunnable config, or
/// [`ServiceError::ForeignJournal`] when the journal's records cannot
/// be aligned with the plan (wrong config, relearn records, some other
/// deployment's history).
pub fn frontier_summary(
    cfg: &crate::config::ServeConfig,
    journal: &RequestJournal,
) -> Result<FrontierSummary, ServiceError> {
    let plan = crate::plan::build_plan(cfg).map_err(ServiceError::Plan)?;
    let frontier = map_journal(&plan, journal)?;
    let mut summary = FrontierSummary {
        units: plan.batches.len(),
        done: frontier.done,
        received: 0,
        recovered: 0,
        quarantined: 0,
        failed: 0,
    };
    for progress in &frontier.units {
        summary.received += progress.received_seqs.len();
        summary.recovered += progress.recovered.len();
        summary.quarantined += progress.quarantined.len();
        summary.failed += progress.failed.len();
    }
    Ok(summary)
}

/// [`crate::run_service`] with failure isolation: the retry ladder,
/// batch bisection and per-tenant circuit breakers of this module,
/// governed by `iso`. An inactive `iso` routes through the plain path
/// unchanged (bit-for-bit, including journal bytes). An active one
/// requires a guard policy — the ladder and bisection probes need a
/// divergence verdict to act on.
///
/// Crash recovery contract: after a kill, reopen the checkpoint and
/// journal **without** the plain resume call
/// (`QuickDrop::recover_deployment` would finish the in-flight unit
/// under the base policy; the CLI skips it when isolation is active)
/// and call this again with the same config — it restores the tail
/// ([`QuickDrop::restore_tail`]), re-derives the breaker fold and the
/// winning ladder rung from the journal, and continues to a
/// bit-for-bit identical terminal state: model bits, journal records,
/// dead-letter set and [`ServeStats`].
///
/// # Errors
///
/// As [`crate::run_service`], plus [`ServiceError::Plan`] for an
/// invalid `iso` or a missing guard policy.
#[allow(clippy::too_many_arguments)]
pub fn run_service_isolated(
    qd: &mut QuickDrop,
    fed: &mut Federation,
    journal: &mut RequestJournal,
    cfg: &ServeConfig,
    policy: Option<&GuardPolicy>,
    iso: &IsolationConfig,
    rng: &mut Rng,
    kill: Option<ChaosKill>,
) -> Result<ServiceRun, ServiceError> {
    iso.validate().map_err(ServiceError::Plan)?;
    if !iso.active() {
        return run_plain(qd, fed, journal, cfg, policy, rng, kill);
    }
    let Some(policy) = policy else {
        return Err(ServiceError::Plan(
            "failure isolation requires a guard policy: the retry ladder and bisection \
             probes need a divergence verdict to act on"
                .to_string(),
        ));
    };
    let plan = build_plan(cfg).map_err(ServiceError::Plan)?;
    let frontier = map_journal(&plan, journal)?;
    // Restore marks/model/RNG from the journal tail without finishing
    // the in-flight unit (the ladder rung must be re-derived first).
    // Idempotent when the live state already matches the tail.
    qd.restore_tail(fed, journal, rng);
    let mut breaker = TenantBreaker::new(
        plan.rejected_by_tenant.len(),
        iso.breaker_trip,
        iso.breaker_cooldown,
    );
    breaker.replay(&plan, &frontier);
    let resumed_units = frontier.done as u64;
    let mut executed_units = 0u64;
    let mut preempted = false;
    for (index, unit) in plan.batches.iter().enumerate().skip(frontier.done) {
        let progress = frontier.units.get(index).filter(|p| p.started);
        let run = serve_unit(
            qd, fed, journal, unit, index, policy, iso, &breaker, rng, kill, progress,
        )?;
        match run {
            UnitRun::Preempted => {
                preempted = true;
                break;
            }
            UnitRun::Done { quarantined, shed } => {
                breaker.tick();
                breaker.feed(unit, &quarantined, &shed);
                executed_units += 1;
            }
        }
    }
    let final_frontier = map_journal(&plan, journal)?;
    let mut stats = ServeStats::from_plan(&plan);
    apply_failure_stats(&mut stats, &plan, &final_frontier, Some(&breaker));
    if preempted {
        stats.mark_partial();
    }
    let dead_letter = final_frontier.dead_letter(&plan);
    Ok(ServiceRun {
        stats,
        executed_units,
        resumed_units,
        preempted,
        dead_letter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RequestTag;
    use qd_core::{FaultFs, Vfs};
    use qd_tensor::rng::Rng;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tag(tenant: usize) -> RequestTag {
        RequestTag {
            tenant,
            idx: 0,
            at_us: 0,
        }
    }

    /// A two-unit plan: a coalesced pair then a singleton, tenants 0/1.
    fn tiny_plan() -> Plan {
        let unit = |members: Vec<UnlearnRequest>, tenants: Vec<usize>| PlannedBatch {
            riders: tenants.iter().map(|&t| vec![tag(t)]).collect(),
            members,
            start_us: 0,
            finish_us: 1,
        };
        Plan {
            batches: vec![
                unit(
                    vec![UnlearnRequest::Client(0), UnlearnRequest::Client(1)],
                    vec![0, 1],
                ),
                unit(vec![UnlearnRequest::Client(2)], vec![0]),
            ],
            offered: 3,
            admitted: 3,
            rejected_by_tenant: vec![0, 0],
            latencies_us: vec![1, 1, 1],
            max_queue_depth: 1,
            depth_sum: 1,
            depth_samples: 1,
            makespan_us: 1,
        }
    }

    fn mem_journal() -> RequestJournal {
        let fs: Arc<dyn Vfs> = Arc::new(FaultFs::new());
        RequestJournal::open_on(fs, PathBuf::from("t.journal")).unwrap()
    }

    fn record(seq: u64, request: UnlearnRequest, state: RequestState) -> JournalRecord {
        JournalRecord {
            seq,
            request,
            state,
            rng: Rng::seed_from(1).state(),
            global: Vec::new(),
            guard: None,
            batch: Some(qd_core::BatchId(0)),
            reason: None,
        }
    }

    #[test]
    fn map_journal_walks_a_matching_journal() {
        let plan = tiny_plan();
        let mut journal = mem_journal();
        journal
            .append_all(vec![
                record(0, UnlearnRequest::Client(0), RequestState::Received),
                record(1, UnlearnRequest::Client(1), RequestState::Received),
            ])
            .unwrap();
        journal
            .append(record(
                0,
                UnlearnRequest::Client(0),
                RequestState::Quarantined,
            ))
            .unwrap();
        let f = map_journal(&plan, &journal).unwrap();
        assert_eq!(f.done, 0, "unit 0 still has a live member");
        assert!(f.units[0].started);
        assert_eq!(f.units[0].quarantined, vec![(0, FailReason::Diverged)]);
        assert!(!f.units[1].started);
        assert_eq!(
            f.dead_letter(&plan).requests(),
            vec![UnlearnRequest::Client(0)]
        );

        journal
            .append(record(
                1,
                UnlearnRequest::Client(1),
                RequestState::Recovered,
            ))
            .unwrap();
        let f = map_journal(&plan, &journal).unwrap();
        assert_eq!(f.done, 1, "unit 0 is terminal for every member");
    }

    #[test]
    fn map_journal_refuses_foreign_journals() {
        let plan = tiny_plan();

        // A request the plan never scheduled.
        let mut journal = mem_journal();
        journal
            .append(record(0, UnlearnRequest::Class(7), RequestState::Received))
            .unwrap();
        assert!(matches!(
            map_journal(&plan, &journal),
            Err(ServiceError::ForeignJournal(_))
        ));

        // A relearn stream.
        let mut journal = mem_journal();
        journal
            .append(record(
                0,
                UnlearnRequest::Client(0),
                RequestState::Relearned,
            ))
            .unwrap();
        assert!(matches!(
            map_journal(&plan, &journal),
            Err(ServiceError::ForeignJournal(_))
        ));

        // A terminal record for a sequence no RECEIVED introduced.
        let mut journal = mem_journal();
        journal
            .append(record(
                9,
                UnlearnRequest::Client(0),
                RequestState::Recovered,
            ))
            .unwrap();
        assert!(matches!(
            map_journal(&plan, &journal),
            Err(ServiceError::ForeignJournal(_))
        ));

        // A journal ending inside unit 0's atomic RECEIVED set.
        let mut journal = mem_journal();
        journal
            .append(record(0, UnlearnRequest::Client(0), RequestState::Received))
            .unwrap();
        assert!(matches!(
            map_journal(&plan, &journal),
            Err(ServiceError::ForeignJournal(_))
        ));

        // More RECEIVED records than the plan has units.
        let mut journal = mem_journal();
        journal
            .append_all(vec![
                record(0, UnlearnRequest::Client(0), RequestState::Received),
                record(1, UnlearnRequest::Client(1), RequestState::Received),
            ])
            .unwrap();
        journal
            .append(record(2, UnlearnRequest::Client(2), RequestState::Received))
            .unwrap();
        journal
            .append(record(3, UnlearnRequest::Client(0), RequestState::Received))
            .unwrap();
        assert!(matches!(
            map_journal(&plan, &journal),
            Err(ServiceError::ForeignJournal(_))
        ));
    }

    #[test]
    fn breaker_trips_cools_down_and_half_opens() {
        let mut b = TenantBreaker::new(2, 2, 3);
        assert!(!b.is_open(0));
        assert_eq!(b.label(0), "closed");

        // One strike is below the trip threshold.
        b.record_quarantine(0);
        assert!(!b.is_open(0));
        // The second strike trips OPEN for the full cooldown.
        b.record_quarantine(0);
        assert!(b.is_open(0));
        assert_eq!(b.label(0), "open(3)");
        assert!(!b.is_open(1), "tenant 1 is unaffected");

        // Cooldown expires unit by unit; at zero the breaker half-opens.
        b.tick();
        b.tick();
        assert_eq!(b.label(0), "open(1)");
        b.tick();
        assert!(!b.is_open(0));
        assert_eq!(b.label(0), "half-open");

        // A served unit in HALF-OPEN closes the breaker for good.
        b.record_served(0);
        assert_eq!(b.label(0), "closed");

        // A quarantine in HALF-OPEN re-opens immediately instead.
        b.record_quarantine(0);
        b.record_quarantine(0);
        b.tick();
        b.tick();
        b.tick();
        assert_eq!(b.label(0), "half-open");
        b.record_quarantine(0);
        assert_eq!(b.label(0), "open(3)", "a failed probe re-opens");
    }

    #[test]
    fn breaker_served_resets_strikes() {
        let mut b = TenantBreaker::new(1, 3, 1);
        b.record_quarantine(0);
        b.record_quarantine(0);
        b.record_served(0);
        b.record_quarantine(0);
        b.record_quarantine(0);
        assert!(!b.is_open(0), "strikes must reset on a served unit");
        b.record_quarantine(0);
        assert!(b.is_open(0));
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = TenantBreaker::new(1, 0, 0);
        for _ in 0..10 {
            b.record_quarantine(0);
        }
        assert!(!b.is_open(0));
        assert_eq!(b.label(0), "closed");
    }
}
