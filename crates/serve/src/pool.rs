//! A hand-rolled fixed-size thread pool.
//!
//! The workspace is vendored-deps-only — no async runtime, no rayon —
//! so qd-serve brings its own pool: a [`std::sync::Mutex`]-guarded job
//! queue drained by worker threads parked on a [`std::sync::Condvar`].
//! The service uses it for the embarrassingly parallel part of planning
//! (generating each tenant's seeded arrival stream); everything the
//! pool computes is merged deterministically afterwards, so concurrency
//! never leaks into results.
//!
//! Serving-path discipline: no `unwrap`/`expect`. A poisoned lock means
//! a *job* panicked while holding it; the queue itself is just a
//! `VecDeque`, always in a consistent state, so the pool recovers the
//! guard with [`std::sync::PoisonError::into_inner`] and keeps going —
//! job panics are reported by [`ThreadPool::join`], not propagated as
//! aborts of unrelated tenants' work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<State>,
    ready: Condvar,
    panicked: AtomicUsize,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed-size pool of worker threads draining a shared job queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qd-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
            })
            .filter_map(Result::ok)
            .collect();
        ThreadPool { shared, workers }
    }

    /// Enqueues a job; some worker will run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = lock(&self.shared);
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.ready.notify_one();
    }

    /// Drains the queue, stops the workers, and returns how many jobs
    /// panicked (0 for a clean run). Queued jobs all run before
    /// shutdown completes.
    pub fn join(mut self) -> usize {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible: the
            // loop catches job panics) still must not take the caller
            // down with it.
            worker.join().ok();
        }
        self.shared.panicked.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
        }
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock(shared);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_before_join_returns() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.join(), 0);
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn job_panics_are_counted_not_propagated() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                assert!(i % 2 == 0, "odd jobs fail");
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.join(), 4);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.execute(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(pool.join(), 0);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
