//! Service configuration.

use serde::{Deserialize, Serialize};

/// Everything the service plan is a function of. Two runs with equal
/// configs produce identical plans, identical journals, and identical
/// [`crate::ServeStats`] — the property the kill-and-resume chaos tests
/// assert bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of tenants submitting request streams.
    pub tenants: usize,
    /// Requests each tenant offers.
    pub arrival_requests: usize,
    /// Mean virtual gap between one tenant's arrivals, in microseconds
    /// of the virtual clock.
    pub arrival_gap_us: u64,
    /// Bounded per-tenant queue capacity; arrivals past it are
    /// rejected (admission control).
    pub queue_cap: usize,
    /// Merge compatible requests into shared batches (one recovery
    /// pass amortized over the batch). Off ⇒ every service unit is a
    /// single request.
    pub coalesce: bool,
    /// Most *distinct* requests one coalesced batch may hold.
    /// Duplicates of a request already in the batch ride along for
    /// free and do not count against this cap.
    pub max_batch: usize,
    /// Deficit round-robin weight per tenant, cycled if shorter than
    /// `tenants`. A tenant with weight 2 gets twice the service share
    /// of a tenant with weight 1 under contention.
    pub weights: Vec<u64>,
    /// Label universe requests draw forget classes from.
    pub classes: usize,
    /// Client universe requests draw forget clients from.
    pub clients: usize,
    /// Probability an arrival is a class-forget request (the rest are
    /// client-forget).
    pub class_share: f32,
    /// Virtual cost of one member's ascent stage, in microseconds.
    pub ascent_cost_us: u64,
    /// Virtual cost of one recovery pass, in microseconds. This is the
    /// term coalescing amortizes: a batch of `k` distinct members
    /// costs `k * ascent_cost_us + recovery_cost_us` instead of
    /// `k * (ascent_cost_us + recovery_cost_us)`.
    pub recovery_cost_us: u64,
    /// Seed for the arrival streams (each tenant's stream is derived
    /// from `seed` and its tenant index).
    pub seed: u64,
    /// Worker threads used while planning. Affects wall-clock only,
    /// never results: streams are merged deterministically.
    pub planner_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 3,
            arrival_requests: 8,
            arrival_gap_us: 1_000,
            queue_cap: 16,
            coalesce: true,
            max_batch: 4,
            weights: vec![1],
            classes: 10,
            clients: 3,
            class_share: 0.8,
            ascent_cost_us: 400,
            recovery_cost_us: 900,
            seed: 7,
            planner_threads: 4,
        }
    }
}

impl ServeConfig {
    /// The DRR weight of `tenant` (the `weights` list cycled, so a
    /// single-element list weights every tenant equally).
    pub fn weight(&self, tenant: usize) -> u64 {
        if self.weights.is_empty() {
            return 1;
        }
        self.weights[tenant % self.weights.len()].max(1)
    }

    /// Checks the config describes a runnable service.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("tenants must be at least 1".to_string());
        }
        if self.queue_cap == 0 {
            return Err("queue-cap must be at least 1".to_string());
        }
        if self.max_batch == 0 {
            return Err("max-batch must be at least 1".to_string());
        }
        if self.classes == 0 && self.class_share > 0.0 {
            return Err("class requests need a non-empty class universe".to_string());
        }
        if self.clients == 0 && self.class_share < 1.0 {
            return Err("client requests need a non-empty client universe".to_string());
        }
        if !(0.0..=1.0).contains(&self.class_share) {
            return Err(format!(
                "class-share must be in [0, 1], got {}",
                self.class_share
            ));
        }
        if self.ascent_cost_us == 0 {
            return Err("ascent-cost-us must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn weights_cycle_and_clamp() {
        let cfg = ServeConfig {
            weights: vec![2, 0],
            ..ServeConfig::default()
        };
        assert_eq!(cfg.weight(0), 2);
        assert_eq!(cfg.weight(1), 1, "zero weights clamp to 1");
        assert_eq!(cfg.weight(2), 2, "list cycles");
        let empty = ServeConfig {
            weights: Vec::new(),
            ..ServeConfig::default()
        };
        assert_eq!(empty.weight(5), 1);
    }

    #[test]
    fn bad_configs_are_named() {
        for (cfg, needle) in [
            (
                ServeConfig {
                    tenants: 0,
                    ..ServeConfig::default()
                },
                "tenants",
            ),
            (
                ServeConfig {
                    queue_cap: 0,
                    ..ServeConfig::default()
                },
                "queue-cap",
            ),
            (
                ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                },
                "max-batch",
            ),
            (
                ServeConfig {
                    class_share: 1.5,
                    ..ServeConfig::default()
                },
                "class-share",
            ),
        ] {
            let err = cfg.validate().expect_err("must be rejected");
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = ServeConfig {
            tenants: 5,
            weights: vec![3, 1],
            coalesce: false,
            ..ServeConfig::default()
        };
        let json = serde_json::to_string(&cfg.to_value()).unwrap();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(ServeConfig::from_value(&value).unwrap(), cfg);
    }
}
