//! qd-serve: a concurrent unlearning-as-a-service front end.
//!
//! QuickDrop's durable request journal (qd-core) already makes a single
//! stream of unlearning requests crash-consistent. This crate puts a
//! *service* in front of it: many tenants submit seeded streams of
//! forget requests, bounded per-tenant queues apply admission control,
//! a deficit-round-robin scheduler shares service fairly, and
//! compatible requests coalesce into journal batches that amortize one
//! recovery pass over several forget sets — the paper's "requests
//! arrive sequentially" observation turned into throughput.
//!
//! # Plan / Execute split
//!
//! The service is deliberately two-phase:
//!
//! 1. **Plan** ([`build_plan`]): a *pure function* of [`ServeConfig`].
//!    Arrival streams are generated concurrently on a hand-rolled
//!    [`ThreadPool`] (the only concurrency in the crate), then merged
//!    deterministically; queuing, fairness, coalescing and the virtual
//!    clock all run single-threaded over the merged stream. Same
//!    config ⇒ same plan, always.
//! 2. **Execute** ([`run_service`]): walks the planned units through
//!    the journaled serving calls in order. All durability lives here,
//!    in qd-core's journal protocol.
//!
//! The split is what makes crash recovery trivial: after a kill, the
//! journal says how many planned units completed, and re-planning from
//! the same config reproduces the identical unit list to continue
//! from. The chaos tests assert the resulting model, journal, and
//! [`ServeStats`] are bit-for-bit equal to an unfailed run.
//!
//! Everything reported in [`ServeStats`] uses the plan's virtual clock
//! — no wall time anywhere — so benchmarks are reproducible across
//! machines and across kill/resume schedules.
//!
//! # Failure isolation
//!
//! [`run_service_isolated`] wraps the same plan/execute split in a
//! degraded-mode executor (see `executor`): a unit the guard rejects
//! climbs a deterministic retry ladder of tightened policies, a
//! poisoned coalesced batch is bisected down to the guilty members,
//! those members are quarantined to a dead-letter journal instead of
//! aborting the run, and per-tenant circuit breakers shed a repeatedly
//! poisonous tenant's queue. All knobs ([`IsolationConfig`]) default
//! off, and the inactive executor is bit-for-bit the plain service.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod executor;
pub mod plan;
pub mod pool;
pub mod service;
pub mod stats;

pub use config::ServeConfig;
pub use executor::{
    frontier_summary, isolate_poison, ladder_policy, run_service_isolated, FrontierSummary,
    IsolationConfig, TenantBreaker, MAX_UNIT_RETRIES,
};
pub use plan::{build_plan, Arrival, Plan, PlannedBatch, RequestTag};
pub use pool::ThreadPool;
pub use service::{run_service, ChaosKill, ServiceError, ServiceRun};
pub use stats::{percentile_us, ServeStats};
