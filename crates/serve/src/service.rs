//! Plan execution over the request journal.
//!
//! [`run_service`] drives the planned service units through
//! `QuickDrop`'s journaled serving calls, in plan order: singleton
//! units through `serve_journaled`, coalesced units through
//! `serve_batch_journaled`. Progress lives entirely in the journal, so
//! crash recovery is: reload checkpoint + journal (which finishes any
//! partially-applied unit via `QuickDrop::resume_requests`), then call
//! [`run_service`] again with the same config — it rebuilds the same
//! plan, maps the journal back onto it, and continues from the first
//! incomplete unit. The final model, journal records and
//! [`ServeStats`] match an unfailed run bit-for-bit.
//!
//! With an active [`crate::IsolationConfig`] the same entry point
//! routes through the failure-isolation executor
//! ([`crate::run_service_isolated`]): diverging units walk a retry
//! ladder, poison members are bisected into a dead-letter set, and
//! per-tenant circuit breakers shed work from repeat offenders — see
//! `crate::executor`.

use crate::config::ServeConfig;
use crate::executor::map_journal;
use crate::plan::build_plan;
use crate::stats::ServeStats;
use qd_core::{
    BatchPreempt, BatchRun, QuickDrop, RequestJournal, RequestState, ServeError, ServeRun,
};
use qd_fed::Federation;
use qd_tensor::rng::Rng;
use qd_unlearn::{ForgetSet, GuardPolicy};

/// Why a service run failed.
#[derive(Debug)]
pub enum ServiceError {
    /// The config was unrunnable or the planner failed.
    Plan(String),
    /// A journaled serving call failed (I/O or guard divergence).
    Serve(ServeError),
    /// The journal does not belong to this service plan: its records
    /// cannot be aligned with the planned units (wrong config, a
    /// relearn stream, or a journal from some other deployment).
    /// Progress counting on such a journal would silently corrupt the
    /// run, so it is refused up front.
    ForeignJournal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Plan(msg) => write!(f, "service plan: {msg}"),
            ServiceError::Serve(e) => e.fmt(f),
            ServiceError::ForeignJournal(msg) => {
                write!(f, "journal does not match this service plan: {msg}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServeError> for ServiceError {
    fn from(e: ServeError) -> Self {
        ServiceError::Serve(e)
    }
}

/// A deterministic crash stand-in: stop the run right after `boundary`
/// of planned unit `unit_index` becomes durable, exactly as a kill at
/// that instant would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Index into the plan's unit list.
    pub unit_index: usize,
    /// The journal boundary to die at. For singleton units,
    /// `Unlearned(_)` means the UNLEARNED record. The
    /// isolation-only boundaries (`Quarantined`, `Failed`) only fire
    /// under an active [`crate::IsolationConfig`]; the plain path
    /// never reaches them.
    pub boundary: BatchPreempt,
}

impl ChaosKill {
    /// The serve-side reading of a unified [`qd_core::CrashPoint`]:
    /// boundary points become a `ChaosKill`, storage points are
    /// [`qd_core::FaultFs::arm`]'s to consume (and return `None`
    /// here). A chaos schedule holds at most one `CrashPoint` per
    /// process lifetime, so routing every kill through these two
    /// translations means it can never express contradictory deaths.
    pub fn from_point(point: &qd_core::CrashPoint) -> Option<ChaosKill> {
        match *point {
            qd_core::CrashPoint::VfsOp(_) => None,
            qd_core::CrashPoint::Boundary { unit, boundary } => Some(ChaosKill {
                unit_index: unit,
                boundary,
            }),
        }
    }
}

/// What a [`run_service`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRun {
    /// Full SLA accounting. Plan-derived and identical across resumes;
    /// when `preempted` is true the stats are marked
    /// [partial](ServeStats::partial) and the latency/throughput
    /// fields are zeroed, because they would describe a schedule that
    /// never finished.
    pub stats: ServeStats,
    /// Units this call executed (not counting ones a previous process
    /// had already completed).
    pub executed_units: u64,
    /// Units already certified by the journal when this call started.
    pub resumed_units: u64,
    /// True when a [`ChaosKill`] stopped the run early; the journal
    /// holds the partial progress and a later call continues it.
    pub preempted: bool,
    /// The dead-letter set: requests whose members were isolated to
    /// QUARANTINED. Empty on the plain path and on any run without
    /// poison.
    pub dead_letter: ForgetSet,
}

/// Plans and executes the whole service run for `cfg` — or, when the
/// journal already holds progress from a killed run *of the same
/// config*, the remainder of it.
///
/// The journal must be dedicated to this service run: its records are
/// aligned with the plan's units before anything executes, and a
/// journal that cannot be aligned (wrong config, relearn records, some
/// other deployment's history) is refused with
/// [`ServiceError::ForeignJournal`] instead of being silently
/// miscounted. Callers resuming after a crash should first restore the
/// deployment (`QuickDrop::recover_deployment`, which finishes any
/// partially-applied unit), then call this with the same config.
///
/// This is the *plain* (isolation-off) path — equivalent to
/// [`crate::run_service_isolated`] with the default all-off
/// [`crate::IsolationConfig`], which is exactly how it is implemented.
///
/// # Errors
///
/// [`ServiceError::Plan`] for an unrunnable config,
/// [`ServiceError::ForeignJournal`] when the journal cannot be aligned
/// with the plan, or [`ServiceError::Serve`] when a unit fails (guard
/// divergence aborts the run; the journal keeps the diverged unit at
/// its last durable state, so a retry surfaces the same error
/// deterministically).
#[allow(clippy::too_many_arguments)]
pub fn run_service(
    qd: &mut QuickDrop,
    fed: &mut Federation,
    journal: &mut RequestJournal,
    cfg: &ServeConfig,
    policy: Option<&GuardPolicy>,
    rng: &mut Rng,
    kill: Option<ChaosKill>,
) -> Result<ServiceRun, ServiceError> {
    run_plain(qd, fed, journal, cfg, policy, rng, kill)
}

/// The isolation-off unit loop shared by [`run_service`] and the
/// executor's inactive fast path: byte-for-byte the behaviour the
/// service had before failure isolation existed, except that progress
/// counting now goes through [`map_journal`] (typed
/// [`ServiceError::ForeignJournal`] instead of silent miscounts) and
/// preempted stats are marked partial.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_plain(
    qd: &mut QuickDrop,
    fed: &mut Federation,
    journal: &mut RequestJournal,
    cfg: &ServeConfig,
    policy: Option<&GuardPolicy>,
    rng: &mut Rng,
    kill: Option<ChaosKill>,
) -> Result<ServiceRun, ServiceError> {
    let plan = build_plan(cfg).map_err(ServiceError::Plan)?;
    let frontier = map_journal(&plan, journal)?;
    let resumed_units = frontier.done as u64;
    let mut stats = ServeStats::from_plan(&plan);
    let mut executed_units = 0u64;
    let mut preempted = false;
    for (index, unit) in plan.batches.iter().enumerate().skip(frontier.done) {
        let unit_kill = kill.filter(|k| k.unit_index == index);
        let hit = if let [single] = unit.members.as_slice() {
            let preempt_at = unit_kill.and_then(|k| match k.boundary {
                BatchPreempt::Received => Some(RequestState::Received),
                BatchPreempt::Unlearned(_) => Some(RequestState::Unlearned),
                BatchPreempt::Recovered => Some(RequestState::Recovered),
                // Isolation-only boundaries: the plain path never
                // writes these records, so the kill cannot fire.
                BatchPreempt::Quarantined | BatchPreempt::Failed => None,
            });
            let run = qd.serve_journaled(fed, journal, *single, policy, rng, preempt_at)?;
            matches!(run, ServeRun::Preempted { .. })
        } else {
            let preempt_at = unit_kill.map(|k| k.boundary);
            let run =
                qd.serve_batch_journaled(fed, journal, &unit.members, policy, rng, preempt_at)?;
            matches!(run, BatchRun::Preempted { .. })
        };
        if hit {
            preempted = true;
            break;
        }
        executed_units += 1;
    }
    let final_frontier = map_journal(&plan, journal)?;
    crate::executor::apply_failure_stats(&mut stats, &plan, &final_frontier, None);
    if preempted {
        stats.mark_partial();
    }
    let dead_letter = final_frontier.dead_letter(&plan);
    Ok(ServiceRun {
        stats,
        executed_units,
        resumed_units,
        preempted,
        dead_letter,
    })
}
