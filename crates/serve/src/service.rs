//! Plan execution over the request journal.
//!
//! [`run_service`] drives the planned service units through
//! `QuickDrop`'s journaled serving calls, in plan order: singleton
//! units through `serve_journaled`, coalesced units through
//! `serve_batch_journaled`. Progress lives entirely in the journal, so
//! crash recovery is: reload checkpoint + journal (which finishes any
//! partially-applied unit via `QuickDrop::resume_requests`), then call
//! [`run_service`] again with the same config — it rebuilds the same
//! plan, counts the units the journal already certifies, and continues
//! from the first incomplete one. The final model, journal records and
//! [`ServeStats`] match an unfailed run bit-for-bit.

use crate::config::ServeConfig;
use crate::plan::{build_plan, Plan};
use crate::stats::ServeStats;
use qd_core::{
    BatchPreempt, BatchRun, QuickDrop, RequestJournal, RequestState, ServeError, ServeRun,
};
use qd_fed::Federation;
use qd_tensor::rng::Rng;
use qd_unlearn::GuardPolicy;

/// Why a service run failed.
#[derive(Debug)]
pub enum ServiceError {
    /// The config was unrunnable or the planner failed.
    Plan(String),
    /// A journaled serving call failed (I/O or guard divergence).
    Serve(ServeError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Plan(msg) => write!(f, "service plan: {msg}"),
            ServiceError::Serve(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServeError> for ServiceError {
    fn from(e: ServeError) -> Self {
        ServiceError::Serve(e)
    }
}

/// A deterministic crash stand-in: stop the run right after `boundary`
/// of planned unit `unit_index` becomes durable, exactly as a kill at
/// that instant would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Index into the plan's unit list.
    pub unit_index: usize,
    /// The journal boundary to die at. For singleton units,
    /// `Unlearned(_)` means the UNLEARNED record.
    pub boundary: BatchPreempt,
}

/// What a [`run_service`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRun {
    /// Full SLA accounting (plan-derived; identical across resumes).
    pub stats: ServeStats,
    /// Units this call executed (not counting ones a previous process
    /// had already completed).
    pub executed_units: u64,
    /// Units already certified by the journal when this call started.
    pub resumed_units: u64,
    /// True when a [`ChaosKill`] stopped the run early; the journal
    /// holds the partial progress and a later call continues it.
    pub preempted: bool,
}

/// Counts the leading planned units the journal already fully
/// certifies: unit *i* is complete once the journal holds RECOVERED
/// records for all of its members (units execute strictly in plan
/// order, so cumulative RECOVERED counts identify the frontier).
fn completed_units(plan: &Plan, journal: &RequestJournal) -> usize {
    let recovered = journal
        .records()
        .iter()
        .filter(|r| r.state == RequestState::Recovered)
        .count();
    let mut cumulative = 0usize;
    let mut done = 0usize;
    for unit in &plan.batches {
        cumulative += unit.members.len();
        if recovered >= cumulative {
            done += 1;
        } else {
            break;
        }
    }
    done
}

/// Plans and executes the whole service run for `cfg` — or, when the
/// journal already holds progress from a killed run *of the same
/// config*, the remainder of it.
///
/// The journal must be dedicated to this service run: progress
/// counting assumes every RECOVERED record in it was written by this
/// plan's units. Callers resuming after a crash should first restore
/// the deployment (`QuickDrop::recover_deployment`, which finishes any
/// partially-applied unit), then call this with the same config.
///
/// # Errors
///
/// [`ServiceError::Plan`] for an unrunnable config, or
/// [`ServiceError::Serve`] when a unit fails (guard divergence aborts
/// the run; the journal keeps the diverged unit at its last durable
/// state, so a retry surfaces the same error deterministically).
#[allow(clippy::too_many_arguments)]
pub fn run_service(
    qd: &mut QuickDrop,
    fed: &mut Federation,
    journal: &mut RequestJournal,
    cfg: &ServeConfig,
    policy: Option<&GuardPolicy>,
    rng: &mut Rng,
    kill: Option<ChaosKill>,
) -> Result<ServiceRun, ServiceError> {
    let plan = build_plan(cfg).map_err(ServiceError::Plan)?;
    let stats = ServeStats::from_plan(&plan);
    let resumed_units = completed_units(&plan, journal) as u64;
    let mut executed_units = 0u64;
    for (index, unit) in plan.batches.iter().enumerate().skip(resumed_units as usize) {
        let unit_kill = kill.filter(|k| k.unit_index == index);
        let preempted = if let [single] = unit.members.as_slice() {
            let preempt_at = unit_kill.map(|k| match k.boundary {
                BatchPreempt::Received => RequestState::Received,
                BatchPreempt::Unlearned(_) => RequestState::Unlearned,
                BatchPreempt::Recovered => RequestState::Recovered,
            });
            let run = qd.serve_journaled(fed, journal, *single, policy, rng, preempt_at)?;
            matches!(run, ServeRun::Preempted { .. })
        } else {
            let preempt_at = unit_kill.map(|k| k.boundary);
            let run =
                qd.serve_batch_journaled(fed, journal, &unit.members, policy, rng, preempt_at)?;
            matches!(run, BatchRun::Preempted { .. })
        };
        if preempted {
            return Ok(ServiceRun {
                stats,
                executed_units,
                resumed_units,
                preempted: true,
            });
        }
        executed_units += 1;
    }
    Ok(ServiceRun {
        stats,
        executed_units,
        resumed_units,
        preempted: false,
    })
}
