//! Property-based tests of the failure-isolation primitives: the
//! retry ladder's tightening schedule and the bisection-based poison
//! localizer.
//!
//! The properties mirror what the chaos matrix in `tests/poison.rs`
//! relies on: the ladder is *deterministic* (resume re-derives the
//! winning rung by re-probing) and *monotone* (a higher rung is never
//! laxer), and bisection blames a set of members that is insensitive
//! to member order — so the dead-letter [`ForgetSet`] a resumed run
//! accumulates merges to the same set an unfailed run wrote.

use proptest::prelude::*;
use qd_serve::{isolate_poison, ladder_policy, IsolationConfig, MAX_UNIT_RETRIES};
use qd_unlearn::{ForgetSet, GuardPolicy, UnlearnRequest};

fn forget_set(members: &[usize]) -> ForgetSet {
    let mut set = ForgetSet::empty();
    for &i in members {
        set.insert(UnlearnRequest::Client(i));
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ladder_tightens_monotonically_and_deterministically(
        budget in 0.01f32..1000.0,
        scale in 0.01f32..1.0,
        rungs in 1u32..24,
    ) {
        let base = GuardPolicy {
            drift_budget: budget,
            ascent_lr_scale: scale,
            ..GuardPolicy::default()
        };
        // Rung 0 is exactly the base policy.
        prop_assert_eq!(ladder_policy(&base, 0), base);
        let mut prev = base;
        for rung in 1..=rungs {
            let p = ladder_policy(&base, rung);
            // Deterministic: the same rung from the same base is the
            // same policy, bit for bit — what makes the winning rung
            // re-derivable on resume without ever serializing it.
            prop_assert_eq!(p, ladder_policy(&base, rung));
            // Monotone: never laxer than the rung below.
            prop_assert!(p.drift_budget <= prev.drift_budget, "budget loosened at rung {}", rung);
            prop_assert!(p.ascent_lr_scale <= prev.ascent_lr_scale, "LR scale grew at rung {}", rung);
            // Still a valid policy: the scale stays in (0, 1].
            prop_assert!(p.ascent_lr_scale > 0.0, "rung {} killed the ascent LR", rung);
            // Every knob the ladder does not own is untouched.
            prop_assert_eq!(p.retain_probe, base.retain_probe);
            prop_assert_eq!(p.ascent_retries, base.ascent_retries);
            prop_assert_eq!(p.probe_samples, base.probe_samples);
            prev = p;
        }
        // The tightening saturates at MAX_UNIT_RETRIES halvings.
        prop_assert_eq!(
            ladder_policy(&base, MAX_UNIT_RETRIES + 7),
            ladder_policy(&base, MAX_UNIT_RETRIES)
        );
    }

    #[test]
    fn bisection_blames_exactly_the_poison_set_in_any_member_order(
        n in 1usize..12,
        mask in 0u32..4096,
        rot in 0usize..12,
    ) {
        let members: Vec<usize> = (0..n).collect();
        let poison: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| mask & (1 << i) != 0)
            .collect();
        let mut rotated = members.clone();
        rotated.rotate_left(rot % n);
        // Per-member poison: a subset passes iff it holds no poison —
        // the monotone regime bisection is specified for.
        let mut probe = |set: &[usize]| set.iter().all(|i| !poison.contains(i));
        let found = isolate_poison(&members, &mut probe);
        let found_rotated = isolate_poison(&rotated, &mut probe);
        if poison.is_empty() {
            // A passing set blames nobody (the executor never calls
            // isolate_poison on one, but the primitive stays total).
            prop_assert!(found.is_empty());
            prop_assert!(found_rotated.is_empty());
        } else {
            // Order-insensitive as ForgetSets: the two traversals merge
            // to the identical dead-letter set, which is the poison set.
            let set = forget_set(&found);
            let set_rotated = forget_set(&found_rotated);
            prop_assert_eq!(set.requests(), set_rotated.requests());
            prop_assert_eq!(set.requests(), forget_set(&poison).requests());
            prop_assert_eq!(
                set.merge(&set_rotated).requests(),
                set.requests(),
                "merging both orders must add nothing"
            );
        }
    }

    #[test]
    fn bisection_exonerates_whole_halves_without_probing_inside(
        n in 4usize..12,
        poison_member in 0usize..12,
    ) {
        let poison_member = poison_member % n;
        let members: Vec<usize> = (0..n).collect();
        let mut probed: Vec<Vec<usize>> = Vec::new();
        let mut probe = |set: &[usize]| {
            probed.push(set.to_vec());
            !set.contains(&poison_member)
        };
        let found = isolate_poison(&members, &mut probe);
        prop_assert_eq!(found, vec![poison_member]);
        // Pruning: every probed subset is on the recursion path of the
        // poison member, so the count is logarithmic (2 per level),
        // not linear in n.
        let levels = (n as f32).log2().ceil() as usize + 1;
        prop_assert!(
            probed.len() <= 2 * levels,
            "{} probes for {} members — a passing half must be exonerated wholesale",
            probed.len(),
            n
        );
    }

    #[test]
    fn isolation_config_validation_is_total(
        retries in 0u32..40,
        trip in 0u32..6,
        cooldown in 0u32..6,
        bisect_bit in 0u8..2,
    ) {
        let bisect = bisect_bit == 1;
        let cfg = IsolationConfig {
            unit_retries: retries,
            bisect,
            breaker_trip: trip,
            breaker_cooldown: cooldown,
        };
        let ok = cfg.validate().is_ok();
        prop_assert_eq!(
            ok,
            retries <= MAX_UNIT_RETRIES && (trip == 0 || cooldown >= 1),
            "validate disagreed for {:?}",
            cfg
        );
        // Inert means inert: a default config is valid and inactive.
        prop_assert!(IsolationConfig::default().validate().is_ok());
        prop_assert!(!IsolationConfig::default().active());
        // Any enabled knob activates the executor.
        prop_assert_eq!(cfg.active(), retries > 0 || bisect || trip > 0);
    }
}
