//! Poison-request chaos matrix: a Byzantine client whose AscentSpike
//! fault diverges every ascent it participates in is mixed into the
//! multi-tenant service stream, and the isolated executor must
//!
//! 1. serve every non-poison request to RECOVERED,
//! 2. quarantine **exactly** the Byzantine client's request — isolated
//!    out of coalesced units by batch bisection, with typed reasons —
//!    into the dead-letter set, and
//! 3. when killed at any of the new failure-isolation boundaries
//!    (RECEIVED, QUARANTINED, FAILED, and the in-execution ones),
//!    resume from checkpoint + journal to a terminal state
//!    **bit-for-bit** identical to the unfailed degraded run: model
//!    bits, every journal record including the typed reason, the
//!    dead-letter set, and [`ServeStats`].
//!
//! A final test pins the inertness contract: with every isolation flag
//! off, [`run_service_isolated`] is byte-for-byte the plain
//! [`run_service`] — same model, same journal bytes on disk, same
//! stats.

use qd_core::{
    BatchPreempt, Checkpoint, FailReason, FaultFs, JournalRecord, QuickDrop, QuickDropConfig,
    RequestJournal, RequestState, Vfs,
};
use qd_data::{partition_iid, SyntheticDataset};
use qd_fed::{FaultKind, FaultPlan, Federation, Phase};
use qd_nn::{Mlp, Module};
use qd_serve::{
    build_plan, run_service, run_service_isolated, ChaosKill, IsolationConfig, Plan, ServeConfig,
    ServeStats,
};
use qd_tensor::rng::{Rng, RngState};
use qd_tensor::Tensor;
use qd_unlearn::{GuardPolicy, UnlearnRequest};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Clients in the federation and in the service's request universe —
/// must agree so every `Client(i)` request has an owner.
const CLIENTS: usize = 3;

fn fresh_fed() -> (Federation, Rng) {
    let mut rng = Rng::seed_from(42);
    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 16, 10]));
    let data = SyntheticDataset::Digits.generate(240, &mut rng);
    let parts = partition_iid(data.len(), CLIENTS, &mut rng);
    let clients = parts.iter().map(|p| data.subset(p)).collect();
    let fed = Federation::new(model, clients, &mut rng);
    (fed, rng)
}

fn config() -> QuickDropConfig {
    let mut cfg = QuickDropConfig::scaled_test();
    cfg.train_phase = Phase::training(6, 3, 16, 0.1);
    cfg
}

fn policy() -> GuardPolicy {
    // Generous enough that honest units pass the ladder's base rung
    // (rung 0) outright; the spike below overshoots any rung's budget.
    GuardPolicy {
        drift_budget: 64.0,
        ..GuardPolicy::default()
    }
}

/// One of the three clients is Byzantine: its ascents run at 10^6× the
/// configured LR, so any unit containing its request diverges at every
/// ladder rung (the per-rung halving cannot undo six orders of
/// magnitude) while honest subsets stay within budget.
fn spike_plan() -> FaultPlan {
    FaultPlan::new(5, 0.34)
        .with_kinds(vec![FaultKind::AscentSpike])
        .with_ascent_spike(1e6)
}

/// The Byzantine client index — stable in the fault plan's seed.
fn byzantine() -> usize {
    (0..CLIENTS)
        .find(|&c| spike_plan().fault_of(CLIENTS, c).is_some())
        .expect("the fault plan must pick exactly one Byzantine client")
}

/// All-client-request traffic (class_share 0) so poison is exactly the
/// Byzantine client's request and nothing else.
fn serve_config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        arrival_requests: 6,
        arrival_gap_us: 300,
        queue_cap: 8,
        coalesce: true,
        max_batch: 3,
        weights: vec![1],
        classes: 2,
        clients: CLIENTS,
        class_share: 0.0,
        ascent_cost_us: 400,
        recovery_cost_us: 900,
        seed: 42,
        planner_threads: 2,
    }
}

/// Ladder + bisection, breakers off: every poison member is isolated
/// and quarantined, nothing is shed.
fn iso() -> IsolationConfig {
    IsolationConfig {
        unit_retries: 2,
        bisect: true,
        ..IsolationConfig::default()
    }
}

struct Paths {
    ckpt: PathBuf,
    journal: PathBuf,
}

fn paths(name: &str) -> Paths {
    let dir = std::env::temp_dir().join("qd_serve_poison_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("{name}.json"));
    let journal = RequestJournal::path_for_checkpoint(&ckpt);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
    Paths { ckpt, journal }
}

fn assert_bit_identical(a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        for (u, v) in x.data().iter().zip(y.data()) {
            assert_eq!(u.to_bits(), v.to_bits(), "parameters diverged");
        }
    }
}

fn assert_same_records(a: &[JournalRecord], b: &[JournalRecord]) {
    assert_eq!(a.len(), b.len(), "journal length diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            (x.seq, x.request, x.state, x.batch, x.reason),
            (y.seq, y.request, y.state, y.batch, y.reason),
            "record identity diverged"
        );
        assert_eq!(x.rng, y.rng, "RNG stream diverged at {} {}", x.seq, x.state);
        assert_eq!(
            x.guard, y.guard,
            "guard stats diverged at {} {}",
            x.seq, x.state
        );
        assert_bit_identical(&x.global, &y.global);
    }
}

/// The plan's shape, pre-verified to exercise every isolation path:
/// units with the poison request, at least one *coalesced* unit mixing
/// poison with honest members (bisection), and clean units.
struct Shape {
    plan: Plan,
    poison_units: Vec<usize>,
    mixed_unit: usize,
    clean_unit: usize,
}

fn shape() -> Shape {
    let plan = build_plan(&serve_config()).unwrap();
    let poison = UnlearnRequest::Client(byzantine());
    let poison_units: Vec<usize> = plan
        .batches
        .iter()
        .enumerate()
        .filter(|(_, u)| u.members.contains(&poison))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !poison_units.is_empty(),
        "the mix must include the Byzantine client's request"
    );
    let mixed_unit = plan
        .batches
        .iter()
        .position(|u| u.members.contains(&poison) && u.members.iter().any(|&m| m != poison))
        .expect("need a coalesced unit mixing poison and honest members");
    let clean_unit = plan
        .batches
        .iter()
        .position(|u| !u.members.contains(&poison))
        .expect("need a clean unit");
    Shape {
        plan,
        poison_units,
        mixed_unit,
        clean_unit,
    }
}

/// Train once (honestly — the spike only fires during ascent phases,
/// but keep the deployment snapshot clean on principle); every
/// scenario redeploys from this bit-exact snapshot.
struct PoisonSeed {
    ckpt: Checkpoint,
    rng: RngState,
}

fn poison_seed() -> PoisonSeed {
    let (mut fed, mut rng) = fresh_fed();
    let (qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
    PoisonSeed {
        ckpt: Checkpoint::capture(fed.global(), &qd),
        rng: rng.state(),
    }
}

/// A "process": fresh federation with the Byzantine fault plan armed,
/// model and engine from the snapshot.
fn deploy(seed: &PoisonSeed) -> (Federation, QuickDrop, Rng) {
    let (mut fed, _) = fresh_fed();
    fed.set_fault_plan(Some(spike_plan()));
    let (global, qd) = seed.ckpt.clone().restore().expect("snapshot restores");
    fed.set_global(global);
    (fed, qd, Rng::from_state(&seed.rng))
}

struct Terminal {
    global: Vec<Tensor>,
    records: Vec<JournalRecord>,
    stats: ServeStats,
    dead_letter: Vec<UnlearnRequest>,
}

/// The unfailed degraded run: deploy, serve the whole poisoned plan
/// under `iso`, no kill.
fn unfailed(seed: &PoisonSeed, paths: &Paths, iso: &IsolationConfig) -> Terminal {
    let (mut fed, mut qd, mut rng) = deploy(seed);
    seed.ckpt.save(&paths.ckpt).unwrap();
    let mut journal = RequestJournal::open(&paths.journal).unwrap();
    let run = run_service_isolated(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        iso,
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted);
    assert_eq!(run.resumed_units, 0);
    Terminal {
        global: fed.global().to_vec(),
        records: journal.records().to_vec(),
        stats: run.stats,
        dead_letter: run.dead_letter.requests(),
    }
}

/// Maps each RECEIVED sequence number to the plan unit that owns it
/// (RECEIVED frames land in plan order, member by member).
fn seq_units(plan: &Plan, records: &[JournalRecord]) -> BTreeMap<u64, usize> {
    let mut map = BTreeMap::new();
    let (mut unit, mut member) = (0usize, 0usize);
    for r in records {
        if r.state == RequestState::Received {
            map.insert(r.seq, unit);
            member += 1;
            if member == plan.batches[unit].members.len() {
                unit += 1;
                member = 0;
            }
        }
    }
    map
}

/// Kills the degraded service at `kill`, then resumes in a "fresh
/// process" from checkpoint + journal alone — deliberately **without**
/// the plain `recover_deployment` resume, which would finish the
/// in-flight unit under the base policy; the isolated executor
/// re-derives the winning ladder rung and the breaker fold from the
/// journal itself — and demands the unfailed run's terminal state.
fn kill_and_resume(
    seed: &PoisonSeed,
    iso: &IsolationConfig,
    kill: ChaosKill,
    name: &str,
    reference: &Terminal,
) {
    let paths = paths(name);

    // Process A: deploy, die at the configured boundary.
    {
        let (mut fed, mut qd, mut rng) = deploy(seed);
        seed.ckpt.save(&paths.ckpt).unwrap();
        let mut journal = RequestJournal::open(&paths.journal).unwrap();
        let run = run_service_isolated(
            &mut qd,
            &mut fed,
            &mut journal,
            &serve_config(),
            Some(&policy()),
            iso,
            &mut rng,
            Some(kill),
        )
        .unwrap();
        assert!(
            run.preempted,
            "{name}: the kill at unit {} must fire",
            kill.unit_index
        );
        assert!(run.stats.partial, "{name}: preempted stats must be partial");
        assert_eq!(run.stats.p50_latency_us, 0, "{name}: partial zeroes SLAs");
        assert_eq!(run.stats.makespan_us, 0, "{name}: partial zeroes SLAs");
    }

    // Process B: model from the checkpoint, progress and RNG from the
    // journal tail (every isolation boundary leaves at least one
    // durable record, so the seed below is never actually used).
    let (mut fed, _) = fresh_fed();
    fed.set_fault_plan(Some(spike_plan()));
    let (global, mut qd) = Checkpoint::load(&paths.ckpt).unwrap().restore().unwrap();
    fed.set_global(global);
    let mut journal = RequestJournal::open(&paths.journal).unwrap();
    let mut rng = Rng::seed_from(0);
    let run = run_service_isolated(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        iso,
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted, "{name}: the resumed run finishes");
    assert!(
        run.resumed_units as usize >= kill.unit_index,
        "{name}: resume must not redo finished units"
    );

    assert_bit_identical(&reference.global, fed.global());
    assert_same_records(&reference.records, journal.records());
    assert_eq!(run.stats, reference.stats, "{name}: stats diverged");
    assert_eq!(
        run.dead_letter.requests(),
        reference.dead_letter,
        "{name}: dead-letter set diverged"
    );
}

#[test]
fn poisoned_mix_quarantines_exactly_the_byzantine_requests() {
    let shape = shape();
    let poison = UnlearnRequest::Client(byzantine());
    let seed = poison_seed();
    let t = unfailed(&seed, &paths("poison_unfailed"), &iso());

    // The dead-letter set is exactly the Byzantine client's request.
    assert_eq!(t.dead_letter, vec![poison]);

    // QUARANTINED records name only the poison request, once per unit
    // that contained it.
    let su = seq_units(&shape.plan, &t.records);
    let mut quarantined_units: Vec<usize> = t
        .records
        .iter()
        .filter(|r| r.state == RequestState::Quarantined)
        .map(|r| {
            assert_eq!(
                r.request, poison,
                "only the Byzantine request may be quarantined"
            );
            su[&r.seq]
        })
        .collect();
    quarantined_units.sort_unstable();
    quarantined_units.dedup();
    assert_eq!(quarantined_units, shape.poison_units);

    // Typed reasons: bisection blames the member inside coalesced
    // units; a whole-unit failure reports ladder exhaustion.
    for r in t
        .records
        .iter()
        .filter(|r| r.state == RequestState::Quarantined)
    {
        let unit = su[&r.seq];
        let expected = if shape.plan.batches[unit].members.len() > 1 {
            FailReason::PoisonMember
        } else {
            FailReason::RetriesExhausted
        };
        assert_eq!(r.reason, Some(expected), "reason at unit {unit}");
    }

    // Every non-poison member is served to RECOVERED.
    let recovered = t
        .records
        .iter()
        .filter(|r| r.state == RequestState::Recovered)
        .count();
    let total: usize = shape.plan.batches.iter().map(|u| u.members.len()).sum();
    assert_eq!(
        recovered,
        total - shape.poison_units.len(),
        "all survivors of bisection must be served"
    );
    assert!(
        !t.records.iter().any(|r| r.state == RequestState::Failed),
        "nothing is shed with breakers off"
    );

    // Stats fold: quarantined counts riders, served loses them, the
    // retried/bisected unit counters match the plan shape.
    let poison_riders: u64 = shape
        .poison_units
        .iter()
        .map(|&u| {
            let unit = &shape.plan.batches[u];
            let i = unit.members.iter().position(|&m| m == poison).unwrap();
            unit.riders[i].len() as u64
        })
        .sum();
    assert_eq!(t.stats.quarantined, poison_riders);
    assert_eq!(t.stats.shed, 0);
    assert_eq!(t.stats.served, t.stats.admitted - poison_riders);
    assert_eq!(t.stats.retried_units, shape.poison_units.len() as u64);
    assert!(
        t.stats.bisected_units >= 1,
        "the mixed unit must be bisected"
    );
    assert!(!t.stats.partial);
    assert!(t.stats.breaker.iter().all(|s| s == "closed"));

    // Quarantining never touches the model: every QUARANTINED record
    // re-certifies the state of the record preceding it.
    for (i, r) in t.records.iter().enumerate() {
        if r.state == RequestState::Quarantined && i > 0 {
            assert_bit_identical(&t.records[i - 1].global, &r.global);
        }
    }
}

#[test]
fn killed_poisoned_service_resumes_bit_for_bit_at_every_boundary_kind() {
    let shape = shape();
    let poison = UnlearnRequest::Client(byzantine());
    let seed = poison_seed();
    let reference = unfailed(&seed, &paths("poison_kill_ref"), &iso());

    let first_poison = shape.poison_units[0];
    let last_clean = shape
        .plan
        .batches
        .iter()
        .rposition(|u| !u.members.contains(&poison))
        .unwrap();

    // Kill before any work: only unit 0's RECEIVED set is durable.
    kill_and_resume(
        &seed,
        &iso(),
        ChaosKill {
            unit_index: 0,
            boundary: BatchPreempt::Received,
        },
        "poison_kill_received",
        &reference,
    );
    // Kill right after the dead-letter write: the QUARANTINED frame is
    // durable, the survivors have not executed.
    kill_and_resume(
        &seed,
        &iso(),
        ChaosKill {
            unit_index: first_poison,
            boundary: BatchPreempt::Quarantined,
        },
        "poison_kill_quarantined",
        &reference,
    );
    // Kill mid-survivors: poison already quarantined, first surviving
    // member UNLEARNED, the rest in flight.
    kill_and_resume(
        &seed,
        &iso(),
        ChaosKill {
            unit_index: shape.mixed_unit,
            boundary: BatchPreempt::Unlearned(1),
        },
        "poison_kill_mid_survivors",
        &reference,
    );
    // Kill at a clean unit's RECOVERED set: the resumed run must
    // re-probe and take rung 0 exactly as the unfailed run did.
    kill_and_resume(
        &seed,
        &iso(),
        ChaosKill {
            unit_index: shape.clean_unit,
            boundary: BatchPreempt::Recovered,
        },
        "poison_kill_clean_recovered",
        &reference,
    );
    // Kill at the last clean unit: little or nothing left to redo.
    kill_and_resume(
        &seed,
        &iso(),
        ChaosKill {
            unit_index: last_clean,
            boundary: BatchPreempt::Recovered,
        },
        "poison_kill_last_clean",
        &reference,
    );
}

#[test]
fn breaker_sheds_the_tripped_tenants_queue_and_resumes_bit_for_bit() {
    let shape = shape();
    let poison = UnlearnRequest::Client(byzantine());
    let seed = poison_seed();
    let biso = IsolationConfig {
        unit_retries: 1,
        bisect: true,
        breaker_trip: 1,
        breaker_cooldown: 2,
    };
    let reference = unfailed(&seed, &paths("poison_breaker_ref"), &biso);

    // The first quarantine trips the owner's breaker; later units with
    // that tenant's members are shed to FAILED without burning probes.
    assert!(
        reference.stats.shed > 0,
        "the tripped tenant's queued members must be shed"
    );
    assert_eq!(
        reference.dead_letter,
        vec![poison],
        "shedding must not grow the dead-letter set"
    );
    for r in reference
        .records
        .iter()
        .filter(|r| r.state == RequestState::Failed)
    {
        assert_eq!(r.reason, Some(FailReason::Shed), "FAILED records are typed");
    }

    let su = seq_units(&shape.plan, &reference.records);
    let first_shed_unit = reference
        .records
        .iter()
        .filter(|r| r.state == RequestState::Failed)
        .map(|r| su[&r.seq])
        .min()
        .unwrap();
    let first_quarantine_unit = reference
        .records
        .iter()
        .filter(|r| r.state == RequestState::Quarantined)
        .map(|r| su[&r.seq])
        .min()
        .unwrap();

    // Kill right after the shed frame — the FAILED boundary.
    kill_and_resume(
        &seed,
        &biso,
        ChaosKill {
            unit_index: first_shed_unit,
            boundary: BatchPreempt::Failed,
        },
        "poison_breaker_kill_failed",
        &reference,
    );
    // And after the quarantine that tripped the breaker: the resumed
    // run must replay the breaker fold and shed the same members.
    kill_and_resume(
        &seed,
        &biso,
        ChaosKill {
            unit_index: first_quarantine_unit,
            boundary: BatchPreempt::Quarantined,
        },
        "poison_breaker_kill_quarantined",
        &reference,
    );
}

#[test]
fn inactive_isolation_is_bit_for_bit_the_plain_service() {
    let seed = poison_seed();
    let ckpt_path = PathBuf::from("svc.json");
    // Honest traffic (no fault plan): the contract is that a build with
    // isolation compiled in but switched off writes the exact bytes the
    // plain service writes.
    let run_on = |isolated: bool| {
        let fs = Arc::new(FaultFs::new());
        let (mut fed, _) = fresh_fed();
        let (global, mut qd) = seed.ckpt.clone().restore().unwrap();
        fed.set_global(global);
        let mut rng = Rng::from_state(&seed.rng);
        seed.ckpt.save_on(fs.as_ref(), &ckpt_path).unwrap();
        let vfs: Arc<dyn Vfs> = Arc::clone(&fs) as Arc<dyn Vfs>;
        let mut journal =
            RequestJournal::open_on(vfs, RequestJournal::path_for_checkpoint(&ckpt_path)).unwrap();
        let run = if isolated {
            run_service_isolated(
                &mut qd,
                &mut fed,
                &mut journal,
                &serve_config(),
                Some(&policy()),
                &IsolationConfig::default(),
                &mut rng,
                None,
            )
            .unwrap()
        } else {
            run_service(
                &mut qd,
                &mut fed,
                &mut journal,
                &serve_config(),
                Some(&policy()),
                &mut rng,
                None,
            )
            .unwrap()
        };
        assert!(run.dead_letter.is_empty());
        (
            fed.global().to_vec(),
            journal.records().to_vec(),
            run.stats,
            fs.files(),
        )
    };
    let plain = run_on(false);
    let inactive = run_on(true);
    assert_bit_identical(&plain.0, &inactive.0);
    assert_same_records(&plain.1, &inactive.1);
    assert_eq!(plain.2, inactive.2, "stats must be identical");
    assert_eq!(
        plain.3, inactive.3,
        "on-disk bytes must be identical with isolation flags off"
    );
}
