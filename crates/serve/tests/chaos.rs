//! Service-level chaos acceptance: a multi-tenant service run killed
//! mid-plan — including mid-batch, between one member's UNLEARNED
//! record and the next — resumes from the deployment checkpoint + the
//! request journal and reproduces the unfailed run **bit-for-bit**:
//! final model bits, every journal record, and the reported
//! [`ServeStats`].

use qd_core::{BatchPreempt, Checkpoint, QuickDrop, QuickDropConfig, RequestJournal, RequestState};
use qd_data::{partition_iid, SyntheticDataset};
use qd_fed::{Federation, Phase};
use qd_nn::{Mlp, Module};
use qd_serve::{build_plan, run_service, ChaosKill, Plan, ServeConfig, ServeStats};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use qd_unlearn::GuardPolicy;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_fed() -> (Federation, Rng) {
    let mut rng = Rng::seed_from(42);
    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 16, 10]));
    let data = SyntheticDataset::Digits.generate(240, &mut rng);
    let parts = partition_iid(data.len(), 3, &mut rng);
    let clients = parts.iter().map(|p| data.subset(p)).collect();
    let fed = Federation::new(model, clients, &mut rng);
    (fed, rng)
}

fn config() -> QuickDropConfig {
    let mut cfg = QuickDropConfig::scaled_test();
    cfg.train_phase = Phase::training(6, 3, 16, 0.1);
    cfg
}

fn policy() -> GuardPolicy {
    // Coalesced batches run up to three ascents back-to-back before the
    // shared recovery, and the service mix re-forgets classes that are
    // already ascended-away, so drift accumulates an order of magnitude
    // past the single-request budget. Keep a real budget in force (the
    // non-finite scan and retain probe still bite) with enough headroom
    // that the clean run never rolls back.
    GuardPolicy {
        drift_budget: 64.0,
        ..GuardPolicy::default()
    }
}

/// Small service: two tenants, tight class universe for duplication
/// pressure, arrivals faster than service so batches actually form.
fn serve_config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        arrival_requests: 3,
        arrival_gap_us: 300,
        queue_cap: 8,
        coalesce: true,
        max_batch: 3,
        weights: vec![1],
        classes: 2,
        clients: 2,
        class_share: 0.7,
        ascent_cost_us: 400,
        recovery_cost_us: 900,
        seed: 11,
        planner_threads: 2,
    }
}

struct Paths {
    ckpt: PathBuf,
    journal: PathBuf,
}

fn paths(name: &str) -> Paths {
    let dir = std::env::temp_dir().join("qd_serve_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("{name}.json"));
    let journal = RequestJournal::path_for_checkpoint(&ckpt);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
    Paths { ckpt, journal }
}

fn assert_bit_identical(a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        for (u, v) in x.data().iter().zip(y.data()) {
            assert_eq!(u.to_bits(), v.to_bits(), "parameters diverged");
        }
    }
}

fn assert_same_records(reference: &RequestJournal, resumed: &RequestJournal) {
    let (a, b) = (reference.records(), resumed.records());
    assert_eq!(a.len(), b.len(), "journal length diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.seq, y.seq);
        assert_eq!(x.request, y.request);
        assert_eq!(x.state, y.state);
        assert_eq!(x.batch, y.batch);
        assert_eq!(x.rng, y.rng, "RNG stream diverged at {} {}", x.seq, x.state);
        assert_eq!(
            x.guard, y.guard,
            "guard stats diverged at {} {}",
            x.seq, x.state
        );
        assert_bit_identical(&x.global, &y.global);
    }
}

/// The unfailed run: train, checkpoint, serve the whole plan.
fn unfailed(paths: &Paths) -> (Vec<Tensor>, RequestJournal, ServeStats) {
    let (mut fed, mut rng) = fresh_fed();
    let (mut qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
    Checkpoint::capture(fed.global(), &qd)
        .save(&paths.ckpt)
        .unwrap();
    let mut journal = RequestJournal::open(&paths.journal).unwrap();
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted);
    assert_eq!(run.resumed_units, 0);
    (fed.global().to_vec(), journal, run.stats)
}

/// Kills the service at `kill`, then resumes in a "fresh process" and
/// finishes the plan; the outcome must match `reference` bit-for-bit.
fn kill_and_resume(
    kill: ChaosKill,
    name: &str,
    reference: &(Vec<Tensor>, RequestJournal, ServeStats),
) {
    let paths = paths(name);

    // Process A: train, checkpoint, die at the configured boundary.
    {
        let (mut fed, mut rng) = fresh_fed();
        let (mut qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
        Checkpoint::capture(fed.global(), &qd)
            .save(&paths.ckpt)
            .unwrap();
        let mut journal = RequestJournal::open(&paths.journal).unwrap();
        let run = run_service(
            &mut qd,
            &mut fed,
            &mut journal,
            &serve_config(),
            Some(&policy()),
            &mut rng,
            Some(kill),
        )
        .unwrap();
        assert!(run.preempted, "the kill must fire");
        assert_eq!(run.executed_units as usize, kill.unit_index);
    }

    // Process B: model, RNG and progress all come from checkpoint +
    // journal. recover_deployment finishes the partially-applied unit;
    // run_service then re-plans and continues from the frontier.
    let (mut fed, mut rng) = fresh_fed();
    let (mut qd, mut journal, _finished) =
        QuickDrop::recover_deployment(&paths.ckpt, &mut fed, Some(&policy()), &mut rng).unwrap();
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted);
    assert!(
        run.resumed_units as usize >= kill.unit_index,
        "resume must not redo finished units"
    );

    assert_bit_identical(&reference.0, fed.global());
    assert_same_records(&reference.1, &journal);
    assert_eq!(run.stats, reference.2, "SLA stats diverged across resume");
}

/// The plan this config produces, with the shape the chaos schedule
/// needs: several units, at least one coalesced batch, at least one
/// singleton.
fn shaped_plan() -> Plan {
    let plan = build_plan(&serve_config()).unwrap();
    assert!(plan.batches.len() >= 2, "need a multi-unit plan");
    assert!(
        plan.batches.iter().any(|b| b.members.len() > 1),
        "need a coalesced batch to kill mid-batch"
    );
    plan
}

#[test]
fn killed_service_resumes_bit_for_bit_at_every_boundary_kind() {
    let plan = shaped_plan();
    let batch_unit = plan
        .batches
        .iter()
        .position(|b| b.members.len() > 1)
        .unwrap();
    let batch_len = plan.batches[batch_unit].members.len();
    let last_unit = plan.batches.len() - 1;

    let ref_paths = paths("serve_unfailed");
    let reference = unfailed(&ref_paths);
    assert_eq!(
        reference
            .1
            .records()
            .iter()
            .filter(|r| r.state == RequestState::Recovered)
            .count(),
        plan.batches.iter().map(|b| b.members.len()).sum::<usize>(),
        "every planned member reaches RECOVERED"
    );

    // Kill before any work: only the RECEIVED set of unit 0 is durable.
    kill_and_resume(
        ChaosKill {
            unit_index: 0,
            boundary: BatchPreempt::Received,
        },
        "serve_kill_received",
        &reference,
    );
    // Kill mid-batch: some members UNLEARNED, recovery not run.
    kill_and_resume(
        ChaosKill {
            unit_index: batch_unit,
            boundary: BatchPreempt::Unlearned(1),
        },
        "serve_kill_unlearned_first",
        &reference,
    );
    kill_and_resume(
        ChaosKill {
            unit_index: batch_unit,
            boundary: BatchPreempt::Unlearned(batch_len),
        },
        "serve_kill_unlearned_last",
        &reference,
    );
    // Kill after the last unit's RECOVERED set: resume has nothing to
    // redo and must recognize that from the journal alone.
    kill_and_resume(
        ChaosKill {
            unit_index: last_unit,
            boundary: BatchPreempt::Recovered,
        },
        "serve_kill_recovered",
        &reference,
    );
}

#[test]
fn stats_report_real_coalescing_for_the_chaos_mix() {
    let plan = shaped_plan();
    let stats = ServeStats::from_plan(&plan);
    assert!(stats.coalesce_ratio > 1.0, "mix must actually coalesce");
    assert_eq!(stats.served, stats.admitted);
    assert!(stats.p50_latency_us <= stats.p99_latency_us);
}
