//! Service-level chaos acceptance: a multi-tenant service run killed
//! mid-plan — including mid-batch, between one member's UNLEARNED
//! record and the next — resumes from the deployment checkpoint + the
//! request journal and reproduces the unfailed run **bit-for-bit**:
//! final model bits, every journal record, and the reported
//! [`ServeStats`].

use qd_core::{BatchPreempt, Checkpoint, QuickDrop, QuickDropConfig, RequestJournal, RequestState};
use qd_data::{partition_iid, SyntheticDataset};
use qd_fed::{Federation, Phase};
use qd_nn::{Mlp, Module};
use qd_serve::{build_plan, run_service, ChaosKill, Plan, ServeConfig, ServeStats};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use qd_unlearn::GuardPolicy;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_fed() -> (Federation, Rng) {
    let mut rng = Rng::seed_from(42);
    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 16, 10]));
    let data = SyntheticDataset::Digits.generate(240, &mut rng);
    let parts = partition_iid(data.len(), 3, &mut rng);
    let clients = parts.iter().map(|p| data.subset(p)).collect();
    let fed = Federation::new(model, clients, &mut rng);
    (fed, rng)
}

fn config() -> QuickDropConfig {
    let mut cfg = QuickDropConfig::scaled_test();
    cfg.train_phase = Phase::training(6, 3, 16, 0.1);
    cfg
}

fn policy() -> GuardPolicy {
    // Coalesced batches run up to three ascents back-to-back before the
    // shared recovery, and the service mix re-forgets classes that are
    // already ascended-away, so drift accumulates an order of magnitude
    // past the single-request budget. Keep a real budget in force (the
    // non-finite scan and retain probe still bite) with enough headroom
    // that the clean run never rolls back.
    GuardPolicy {
        drift_budget: 64.0,
        ..GuardPolicy::default()
    }
}

/// Small service: two tenants, tight class universe for duplication
/// pressure, arrivals faster than service so batches actually form.
fn serve_config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        arrival_requests: 3,
        arrival_gap_us: 300,
        queue_cap: 8,
        coalesce: true,
        max_batch: 3,
        weights: vec![1],
        classes: 2,
        clients: 2,
        class_share: 0.7,
        ascent_cost_us: 400,
        recovery_cost_us: 900,
        seed: 11,
        planner_threads: 2,
    }
}

struct Paths {
    ckpt: PathBuf,
    journal: PathBuf,
}

fn paths(name: &str) -> Paths {
    let dir = std::env::temp_dir().join("qd_serve_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("{name}.json"));
    let journal = RequestJournal::path_for_checkpoint(&ckpt);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
    Paths { ckpt, journal }
}

fn assert_bit_identical(a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        for (u, v) in x.data().iter().zip(y.data()) {
            assert_eq!(u.to_bits(), v.to_bits(), "parameters diverged");
        }
    }
}

fn assert_same_records(reference: &RequestJournal, resumed: &RequestJournal) {
    let (a, b) = (reference.records(), resumed.records());
    assert_eq!(a.len(), b.len(), "journal length diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.seq, y.seq);
        assert_eq!(x.request, y.request);
        assert_eq!(x.state, y.state);
        assert_eq!(x.batch, y.batch);
        assert_eq!(x.rng, y.rng, "RNG stream diverged at {} {}", x.seq, x.state);
        assert_eq!(
            x.guard, y.guard,
            "guard stats diverged at {} {}",
            x.seq, x.state
        );
        assert_bit_identical(&x.global, &y.global);
    }
}

/// The unfailed run: train, checkpoint, serve the whole plan.
fn unfailed(paths: &Paths) -> (Vec<Tensor>, RequestJournal, ServeStats) {
    let (mut fed, mut rng) = fresh_fed();
    let (mut qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
    Checkpoint::capture(fed.global(), &qd)
        .save(&paths.ckpt)
        .unwrap();
    let mut journal = RequestJournal::open(&paths.journal).unwrap();
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted);
    assert_eq!(run.resumed_units, 0);
    (fed.global().to_vec(), journal, run.stats)
}

/// Kills the service at `kill`, then resumes in a "fresh process" and
/// finishes the plan; the outcome must match `reference` bit-for-bit.
fn kill_and_resume(
    kill: ChaosKill,
    name: &str,
    reference: &(Vec<Tensor>, RequestJournal, ServeStats),
) {
    let paths = paths(name);

    // Process A: train, checkpoint, die at the configured boundary.
    {
        let (mut fed, mut rng) = fresh_fed();
        let (mut qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
        Checkpoint::capture(fed.global(), &qd)
            .save(&paths.ckpt)
            .unwrap();
        let mut journal = RequestJournal::open(&paths.journal).unwrap();
        let run = run_service(
            &mut qd,
            &mut fed,
            &mut journal,
            &serve_config(),
            Some(&policy()),
            &mut rng,
            Some(kill),
        )
        .unwrap();
        assert!(run.preempted, "the kill must fire");
        assert_eq!(run.executed_units as usize, kill.unit_index);
    }

    // Process B: model, RNG and progress all come from checkpoint +
    // journal. recover_deployment finishes the partially-applied unit;
    // run_service then re-plans and continues from the frontier.
    let (mut fed, mut rng) = fresh_fed();
    let (mut qd, mut journal, _finished) =
        QuickDrop::recover_deployment(&paths.ckpt, &mut fed, Some(&policy()), &mut rng).unwrap();
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .unwrap();
    assert!(!run.preempted);
    assert!(
        run.resumed_units as usize >= kill.unit_index,
        "resume must not redo finished units"
    );

    assert_bit_identical(&reference.0, fed.global());
    assert_same_records(&reference.1, &journal);
    assert_eq!(run.stats, reference.2, "SLA stats diverged across resume");
}

/// The plan this config produces, with the shape the chaos schedule
/// needs: several units, at least one coalesced batch, at least one
/// singleton.
fn shaped_plan() -> Plan {
    let plan = build_plan(&serve_config()).unwrap();
    assert!(plan.batches.len() >= 2, "need a multi-unit plan");
    assert!(
        plan.batches.iter().any(|b| b.members.len() > 1),
        "need a coalesced batch to kill mid-batch"
    );
    plan
}

#[test]
fn killed_service_resumes_bit_for_bit_at_every_boundary_kind() {
    let plan = shaped_plan();
    let batch_unit = plan
        .batches
        .iter()
        .position(|b| b.members.len() > 1)
        .unwrap();
    let batch_len = plan.batches[batch_unit].members.len();
    let last_unit = plan.batches.len() - 1;

    let ref_paths = paths("serve_unfailed");
    let reference = unfailed(&ref_paths);
    assert_eq!(
        reference
            .1
            .records()
            .iter()
            .filter(|r| r.state == RequestState::Recovered)
            .count(),
        plan.batches.iter().map(|b| b.members.len()).sum::<usize>(),
        "every planned member reaches RECOVERED"
    );

    // Kill before any work: only the RECEIVED set of unit 0 is durable.
    kill_and_resume(
        ChaosKill {
            unit_index: 0,
            boundary: BatchPreempt::Received,
        },
        "serve_kill_received",
        &reference,
    );
    // Kill mid-batch: some members UNLEARNED, recovery not run.
    kill_and_resume(
        ChaosKill {
            unit_index: batch_unit,
            boundary: BatchPreempt::Unlearned(1),
        },
        "serve_kill_unlearned_first",
        &reference,
    );
    kill_and_resume(
        ChaosKill {
            unit_index: batch_unit,
            boundary: BatchPreempt::Unlearned(batch_len),
        },
        "serve_kill_unlearned_last",
        &reference,
    );
    // Kill after the last unit's RECOVERED set: resume has nothing to
    // redo and must recognize that from the journal alone.
    kill_and_resume(
        ChaosKill {
            unit_index: last_unit,
            boundary: BatchPreempt::Recovered,
        },
        "serve_kill_recovered",
        &reference,
    );
}

#[test]
fn stats_report_real_coalescing_for_the_chaos_mix() {
    let plan = shaped_plan();
    let stats = ServeStats::from_plan(&plan);
    assert!(stats.coalesce_ratio > 1.0, "mix must actually coalesce");
    assert_eq!(stats.served, stats.admitted);
    assert!(stats.p50_latency_us <= stats.p99_latency_us);
}

// ---------------------------------------------------------------------------
// Vfs-level crash matrix: instead of killing at semantic boundaries, kill
// at every *syscall* of a full service run — checkpoint save, journal
// marker, every framed append and fsync, the stats write — crash the
// in-memory filesystem, recover, and demand the identical terminal state:
// model bits, journal records, SLA stats, and every on-disk byte.
// ---------------------------------------------------------------------------

use qd_core::{FaultFs, JournalRecord, Vfs};
use qd_tensor::rng::RngState;
use std::collections::BTreeMap;

fn vfs_ckpt_path() -> PathBuf {
    PathBuf::from("svc.json")
}

fn vfs_stats_path() -> PathBuf {
    PathBuf::from("svc.stats.json")
}

/// Train once; every matrix iteration redeploys from this snapshot
/// (checkpoint capture/restore is bit-exact) instead of retraining.
struct ServeSeed {
    ckpt: Checkpoint,
    rng: RngState,
}

fn serve_seed() -> ServeSeed {
    let (mut fed, mut rng) = fresh_fed();
    let (qd, _) = QuickDrop::train(&mut fed, config(), &mut rng);
    ServeSeed {
        ckpt: Checkpoint::capture(fed.global(), &qd),
        rng: rng.state(),
    }
}

fn vfs_deploy(seed: &ServeSeed) -> (Federation, QuickDrop, Rng) {
    let (mut fed, _) = fresh_fed();
    let (global, qd) = seed.ckpt.clone().restore().expect("snapshot restores");
    fed.set_global(global);
    (fed, qd, Rng::from_state(&seed.rng))
}

struct VfsTerminal {
    global: Vec<Tensor>,
    rng: RngState,
    records: Vec<JournalRecord>,
    stats: ServeStats,
    files: BTreeMap<PathBuf, Vec<u8>>,
}

/// One full service deployment on `fs`: save checkpoint, open journal,
/// serve the whole multi-tenant plan, persist stats. Any injected fault
/// aborts with an error — the process dying at that syscall.
fn vfs_scenario(seed: &ServeSeed, fs: &Arc<FaultFs>) -> Result<VfsTerminal, String> {
    let (mut fed, mut qd, mut rng) = vfs_deploy(seed);
    seed.ckpt
        .save_on(fs.as_ref(), &vfs_ckpt_path())
        .map_err(|e| e.to_string())?;
    let vfs: Arc<dyn Vfs> = Arc::clone(fs) as Arc<dyn Vfs>;
    let mut journal =
        RequestJournal::open_on(vfs, RequestJournal::path_for_checkpoint(vfs_ckpt_path()))
            .map_err(|e| e.to_string())?;
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .map_err(|e| e.to_string())?;
    run.stats
        .save_json_on(fs.as_ref(), &vfs_stats_path())
        .map_err(|e| e.to_string())?;
    Ok(VfsTerminal {
        global: fed.global().to_vec(),
        rng: rng.state(),
        records: journal.records().to_vec(),
        stats: run.stats,
        files: fs.files(),
    })
}

/// The fresh process after the machine restarts: recover whatever is
/// durable and finish the plan.
fn vfs_resume(seed: &ServeSeed, fs: &Arc<FaultFs>) -> VfsTerminal {
    if fs.file(&vfs_ckpt_path()).is_none() {
        // The checkpoint save strictly precedes every journal write, so
        // nothing was durable: redeploy from the seed.
        return vfs_scenario(seed, fs).expect("fault-free redeploy succeeds");
    }
    let vfs: Arc<dyn Vfs> = Arc::clone(fs) as Arc<dyn Vfs>;
    let (mut fed, mut rng) = fresh_fed();
    let (mut qd, mut journal, _finished) =
        QuickDrop::recover_deployment_on(vfs, vfs_ckpt_path(), &mut fed, Some(&policy()), &mut rng)
            .expect("recovery after a crash succeeds");
    if journal.records().is_empty() {
        // Died before the first record became durable: the post-train
        // RNG stream is not on disk; rebuild it from the seed.
        let (fed2, qd2, rng2) = vfs_deploy(seed);
        (fed, qd, rng) = (fed2, qd2, rng2);
    }
    let run = run_service(
        &mut qd,
        &mut fed,
        &mut journal,
        &serve_config(),
        Some(&policy()),
        &mut rng,
        None,
    )
    .expect("resumed service run succeeds");
    run.stats
        .save_json_on(fs.as_ref(), &vfs_stats_path())
        .expect("stats save after resume succeeds");
    VfsTerminal {
        global: fed.global().to_vec(),
        rng: rng.state(),
        records: journal.records().to_vec(),
        stats: run.stats,
        files: fs.files(),
    }
}

fn assert_vfs_terminal_eq(reference: &VfsTerminal, resumed: &VfsTerminal, ctx: &str) {
    assert_bit_identical(&reference.global, &resumed.global);
    assert_eq!(reference.rng, resumed.rng, "{ctx}: RNG stream diverged");
    assert_eq!(reference.stats, resumed.stats, "{ctx}: SLA stats diverged");
    assert_eq!(
        reference.records.len(),
        resumed.records.len(),
        "{ctx}: journal length diverged"
    );
    for (a, b) in reference.records.iter().zip(&resumed.records) {
        assert_eq!(
            (a.seq, a.request, a.state, a.batch),
            (b.seq, b.request, b.state, b.batch),
            "{ctx}"
        );
        assert_eq!(a.rng, b.rng, "{ctx}: record RNG diverged");
        assert_eq!(a.guard, b.guard, "{ctx}: guard stats diverged");
        assert_bit_identical(&a.global, &b.global);
    }
    assert_eq!(
        reference.files.keys().collect::<Vec<_>>(),
        resumed.files.keys().collect::<Vec<_>>(),
        "{ctx}: on-disk file set diverged"
    );
    for (path, bytes) in &reference.files {
        assert!(
            resumed.files.get(path).is_some_and(|b| b == bytes),
            "{ctx}: bytes of {} diverged",
            path.display()
        );
    }
}

#[test]
fn service_crash_matrix_kills_every_vfs_op_and_resumes_identically() {
    let seed = serve_seed();
    let baseline_fs = Arc::new(FaultFs::new());
    let baseline = vfs_scenario(&seed, &baseline_fs).expect("unfailed service run succeeds");
    let total_ops = baseline_fs.op_count();
    assert!(
        total_ops > 20,
        "service run must exercise a real op stream, got {total_ops}"
    );

    // Debug builds sample the matrix; release (the check.sh gate) runs
    // every operation index.
    let stride = if cfg!(debug_assertions) { 6 } else { 1 };
    let mut kill_points: Vec<u64> = (0..total_ops).step_by(stride).collect();
    if kill_points.last() != Some(&(total_ops - 1)) {
        kill_points.push(total_ops - 1);
    }

    for k in kill_points {
        let fs = Arc::new(FaultFs::new());
        fs.kill_at(k);
        assert!(
            vfs_scenario(&seed, &fs).is_err(),
            "kill at op {k} must abort the run"
        );
        fs.crash();
        let resumed = vfs_resume(&seed, &fs);
        assert_vfs_terminal_eq(&baseline, &resumed, &format!("kill at op {k}"));
    }
}
