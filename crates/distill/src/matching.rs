//! The gradient-matching objective and the class-wise synthetic update.

use qd_autograd::{Tape, Var};
use qd_nn::{cross_entropy, Module};
use qd_tensor::Tensor;

/// Numerical floor for the cosine denominator.
const EPS: f32 = 1e-6;

/// Cross-entropy gradients of `model` at `params` on one labelled batch,
/// returned as plain tensors (the *detached* reference branch of Eq. 5).
pub fn reference_gradients(
    model: &dyn Module,
    params: &[Tensor],
    x: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Vec<Tensor> {
    let mut tape = Tape::new();
    let p: Vec<Var> = params.iter().map(|t| tape.leaf(t.clone())).collect();
    let xv = tape.constant(x.clone());
    let logits = model.forward(&mut tape, &p, xv);
    let loss = cross_entropy(&mut tape, logits, labels, classes);
    let grads = tape.grad(loss, &p);
    grads.into_iter().map(|g| tape.value(g).clone()).collect()
}

/// Builds the layerwise gradient-matching distance of Zhao et al. (2021)
/// on the tape:
///
/// `d(A, B) = Σ_layers Σ_rows (1 − ⟨a_r, b_r⟩ / max(‖a_r‖‖b_r‖, ε))`
///
/// where rows are per-output groups (first axis for matrices, the whole
/// tensor for vectors). `grads_s` must be differentiable tape variables
/// (the synthetic branch); `grads_d` are fixed reference tensors. Empty
/// gradient lists yield a zero distance (the empty sum).
///
/// # Panics
///
/// Panics if the slices differ in length or any pair differs in element
/// count.
pub fn matching_distance(tape: &mut Tape, grads_s: &[Var], grads_d: &[Tensor]) -> Var {
    assert_eq!(
        grads_s.len(),
        grads_d.len(),
        "gradient list length mismatch"
    );
    let mut total: Option<Var> = None;
    for (&gs, gd) in grads_s.iter().zip(grads_d) {
        let dims = tape.value(gs).dims().to_vec();
        assert_eq!(
            tape.value(gs).len(),
            gd.len(),
            "gradient element-count mismatch"
        );
        // Per-output-row grouping: matrices match row-wise, vectors as one
        // group.
        let (rows, cols) = match dims.split_first() {
            Some((&r, rest)) if !rest.is_empty() => (r, rest.iter().product::<usize>()),
            _ => (1, gd.len()),
        };
        let a = tape.reshape(gs, &[rows, cols]);
        let b = tape.constant(gd.reshape(&[rows, cols]));
        let ab = tape.mul(a, b);
        let num = tape.sum_cols(ab); // (rows,)
        let aa = tape.mul(a, a);
        let na2 = tape.sum_cols(aa);
        let bb = tape.mul(b, b);
        let nb2 = tape.sum_cols(bb);
        let prod = tape.mul(na2, nb2);
        let prod_eps = tape.add_scalar(prod, EPS);
        let denom = tape.sqrt(prod_eps);
        let cosine = tape.div(num, denom);
        let neg = tape.neg(cosine);
        let one_minus = tape.add_scalar(neg, 1.0);
        let layer = tape.sum_all(one_minus);
        total = Some(match total {
            Some(t) => tape.add(t, layer),
            None => layer,
        });
    }
    // Empty gradient lists reduce to the empty sum: a zero distance.
    total.unwrap_or_else(|| tape.constant(Tensor::zeros(&[1])))
}

/// One class-wise synthetic update (Eq. 6): runs `steps` SGD steps on the
/// synthetic samples of one class, minimizing the matching distance
/// between the model gradients they induce and `ref_grads` (the gradients
/// of the same class's *real* samples at the same parameters).
///
/// Returns the updated synthetic tensor and the distance *before* the
/// first step (useful for monitoring convergence).
///
/// # Panics
///
/// Panics if `steps == 0` would still be fine (returns unchanged), but a
/// non-positive `lr` panics.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Algorithm 2 signature
pub fn match_class_step(
    model: &dyn Module,
    params: &[Tensor],
    ref_grads: &[Tensor],
    syn: Tensor,
    class: usize,
    classes: usize,
    lr: f32,
    steps: usize,
) -> (Tensor, f32) {
    assert!(lr.is_finite() && lr > 0.0, "matching lr must be positive");
    let mut syn = syn;
    let mut first_distance = f32::NAN;
    for step in 0..steps.max(1) {
        let mut tape = Tape::new();
        let p: Vec<Var> = params.iter().map(|t| tape.leaf(t.clone())).collect();
        let sv = tape.leaf(syn.clone());
        let labels = vec![class; crate::synset::rows(&syn)];
        let logits = model.forward(&mut tape, &p, sv);
        let loss = cross_entropy(&mut tape, logits, &labels, classes);
        let grads_s = tape.grad(loss, &p);
        let dist = matching_distance(&mut tape, &grads_s, ref_grads);
        if step == 0 {
            first_distance = tape.value(dist).item();
        }
        if steps == 0 {
            break;
        }
        let Some(g) = tape.grad(dist, &[sv]).pop() else {
            break;
        };
        let mut updated = syn.clone();
        updated.axpy(-lr, tape.value(g));
        syn = updated;
    }
    (syn, first_distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_nn::Mlp;
    use qd_tensor::rng::Rng;

    #[test]
    fn distance_of_identical_gradients_is_zero() {
        let mut rng = Rng::seed_from(0);
        let g = Tensor::randn(&[4, 6], &mut rng);
        let mut tape = Tape::new();
        let gs = tape.leaf(g.clone());
        let d = matching_distance(&mut tape, &[gs], &[g]);
        assert!(tape.value(d).item().abs() < 1e-4);
    }

    #[test]
    fn distance_of_opposite_gradients_is_two_per_row() {
        let mut rng = Rng::seed_from(1);
        let g = Tensor::randn(&[3, 5], &mut rng);
        let mut tape = Tape::new();
        let gs = tape.leaf(g.scale(-1.0));
        let d = matching_distance(&mut tape, &[gs], &[g]);
        assert!((tape.value(d).item() - 6.0).abs() < 1e-3); // 2 per row x 3 rows
    }

    #[test]
    fn distance_is_scale_invariant_per_row() {
        let mut rng = Rng::seed_from(2);
        let g = Tensor::randn(&[2, 8], &mut rng);
        let mut tape = Tape::new();
        let gs = tape.leaf(g.scale(3.7));
        let d = matching_distance(&mut tape, &[gs], &[g]);
        assert!(tape.value(d).item().abs() < 1e-4);
    }

    #[test]
    fn vector_gradients_match_as_single_group() {
        let mut rng = Rng::seed_from(3);
        let g = Tensor::randn(&[7], &mut rng);
        let mut tape = Tape::new();
        let gs = tape.leaf(g.clone());
        let d = matching_distance(&mut tape, &[gs], &[g]);
        assert!(tape.value(d).item().abs() < 1e-4);
    }

    #[test]
    fn match_step_reduces_distance() {
        // Synthetic samples initialized from noise should move toward
        // matching the real class gradients.
        let mut rng = Rng::seed_from(4);
        let model = Mlp::new(&[256, 10]);
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(120, &mut rng);
        let class = 3;
        let (real_x, real_y) = data.only_class(class).all();
        let refs = reference_gradients(&model, &params, &real_x, &real_y, 10);
        let syn0 = Tensor::randn(&[2, 1, 16, 16], &mut rng);

        let (_, d0) = match_class_step(&model, &params, &refs, syn0.clone(), class, 10, 1.0, 1);
        let mut syn = syn0;
        for _ in 0..100 {
            let (s, _) = match_class_step(&model, &params, &refs, syn, class, 10, 1.0, 1);
            syn = s;
        }
        let (_, d_after) = match_class_step(&model, &params, &refs, syn, class, 10, 1.0, 1);
        assert!(
            d_after < d0 * 0.3,
            "matching distance should drop: {d0} -> {d_after}"
        );
    }

    #[test]
    fn matching_works_through_maxpool_and_tanh_architectures() {
        // LeNet uses max pooling (argmax routing) and tanh (smooth):
        // gradient matching must still drive the distance down, which
        // exercises second-order AD through both op families.
        let mut rng = Rng::seed_from(6);
        let model = qd_nn::LeNet::new(1, 16, 10);
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(80, &mut rng);
        let class = 1;
        let (real_x, real_y) = data.only_class(class).all();
        let refs = reference_gradients(&model, &params, &real_x, &real_y, 10);
        let mut syn = Tensor::randn(&[2, 1, 16, 16], &mut rng);
        let (_, d0) = match_class_step(&model, &params, &refs, syn.clone(), class, 10, 1.0, 1);
        for _ in 0..40 {
            let (s, _) = match_class_step(&model, &params, &refs, syn, class, 10, 1.0, 1);
            syn = s;
        }
        let (_, d_after) = match_class_step(&model, &params, &refs, syn, class, 10, 1.0, 1);
        assert!(
            d_after < d0 * 0.7,
            "LeNet matching distance should drop: {d0} -> {d_after}"
        );
    }

    #[test]
    fn reference_gradients_shapes_match_params() {
        let mut rng = Rng::seed_from(5);
        let model = Mlp::new(&[256, 8, 10]);
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(16, &mut rng);
        let (x, y) = data.all();
        let refs = reference_gradients(&model, &params, &x, &y, 10);
        assert_eq!(refs.len(), params.len());
        for (r, p) in refs.iter().zip(&params) {
            assert_eq!(r.dims(), p.dims());
        }
    }
}
