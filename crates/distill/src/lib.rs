//! Dataset distillation by gradient matching, in situ with federated
//! training — the machinery behind QuickDrop's synthetic datasets.
//!
//! # What is generated
//!
//! Each client condenses its local dataset `Dᵢ` into a tiny per-class
//! synthetic counterpart `Sᵢ` (`|Sᵢᶜ| = ⌈|Dᵢᶜ| / s⌉` for scale parameter
//! `s`, 100 by default ⇒ 1% volume). The synthetic samples are optimized
//! so that the *gradients* the model sees on `Sᵢ` track the gradients it
//! saw on `Dᵢ` along the whole FL optimization trajectory (Eq. 5 of the
//! paper, following Zhao et al., ICLR 2021). They are, literally, a
//! compressed store of the training gradient information — which is why
//! gradient *ascent* on them later unlearns what those gradients taught.
//!
//! # How
//!
//! * [`matching_distance`] builds the layerwise per-output-row cosine
//!   distance `d(∇θL(S), ∇θL(D))` on a tape; since the tape supports
//!   higher-order gradients, `∂d/∂S` is exact.
//! * [`match_class_step`] performs one class-wise synthetic update
//!   (Eq. 6).
//! * [`DistillingTrainer`] is a drop-in [`qd_fed::ClientTrainer`] that
//!   runs ordinary local SGD **and** interleaves synthetic updates
//!   (Algorithm 2), timing the distillation overhead (Table 6).
//! * [`finetune`] optionally refines a finished synthetic set across
//!   fresh model initializations for better recovery accuracy
//!   (Section 3.3.2 / Figure 5).
//! * [`augment_with_real`] mixes 1:1 real samples into the synthetic set
//!   for the recovery phase (Section 3.3.1).
//!
//! # Examples
//!
//! Condense a tiny dataset and check the synthetic set size:
//!
//! ```
//! use qd_data::SyntheticDataset;
//! use qd_distill::SyntheticSet;
//! use qd_tensor::rng::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let data = SyntheticDataset::Digits.generate(300, &mut rng);
//! let syn = SyntheticSet::init_from_real(&data, 100, &mut rng);
//! // ceil(count/100) per class: tiny.
//! assert!(syn.len() >= 10 && syn.len() <= 20);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod augment;
mod distribution;
mod finetune;
mod matching;
mod synset;
mod trainer;
mod trajectory;

pub use augment::augment_with_real;
pub use distribution::distribution_match_step;
pub use finetune::{finetune, FinetuneConfig};
pub use matching::{match_class_step, matching_distance, reference_gradients};
pub use synset::SyntheticSet;
pub use trainer::{distilling_trainers, DistillConfig, DistillingTrainer, MatchObjective};
pub use trajectory::{trajectory_match_step, ExpertTrajectory};
