//! The in-situ distilling client trainer (Algorithm 2 of the paper).

use crate::{distribution_match_step, match_class_step, reference_gradients, SyntheticSet};
use qd_data::Dataset;
use qd_fed::{ClientTrainer, LocalOutcome, Phase};
use qd_nn::{Module, Sgd};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which condensation objective drives the synthetic updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum MatchObjective {
    /// Gradient matching (Zhao et al. ICLR'21) — the paper's choice:
    /// synthetic data compresses *gradient* information, which is what
    /// SGA unlearning replays.
    #[default]
    Gradient,
    /// Distribution matching (Zhao & Bilen WACV'23) — ablation baseline:
    /// aligns embedding means; cheaper but not targeted at unlearning.
    Distribution,
}

/// Hyper-parameters of in-situ synthetic data generation.
///
/// Defaults follow Section 4.1: scale `s = 100`, `ς_S = 1` matching step
/// with learning rate `η_S = 0.1`, SGD as the synthetic optimizer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistillConfig {
    /// Scale parameter `s`: `|Sᵢᶜ| = ⌈|Dᵢᶜ| / s⌉`.
    pub scale: usize,
    /// Synthetic-sample learning rate `η_S`.
    pub lr_syn: f32,
    /// Synthetic update steps per matching invocation `ς_S`.
    pub steps_syn: usize,
    /// How many owned classes to match per local step (round-robin).
    /// `usize::MAX` matches every owned class each step, as in the paper;
    /// smaller values trade distillation quality for speed.
    pub classes_per_step: usize,
    /// Mini-batch cap for the per-class real reference batch.
    pub real_batch_per_class: usize,
    /// Initialize synthetic samples from real data (`true`, paper
    /// default) or Gaussian noise (`false`, ablation).
    pub init_from_real: bool,
    /// Condensation objective (gradient matching by default).
    pub objective: MatchObjective,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            scale: 100,
            lr_syn: 0.1,
            steps_syn: 1,
            classes_per_step: usize::MAX,
            real_batch_per_class: 32,
            init_from_real: true,
            objective: MatchObjective::Gradient,
        }
    }
}

/// A [`ClientTrainer`] that performs standard local SGD **and**, at every
/// local step, refines a per-class synthetic dataset by gradient matching
/// against the same model iterate (Algorithm 2).
///
/// The model update itself uses only the real-data gradient, exactly as in
/// plain FedAvg — distillation is a passenger on the training trajectory,
/// which is why the FL result is unchanged and the extra cost is only the
/// matching work (reported by [`DistillingTrainer::dd_time`], Table 6).
pub struct DistillingTrainer {
    model: Arc<dyn Module>,
    config: DistillConfig,
    synthetic: Option<SyntheticSet>,
    round_robin: usize,
    dd_time: Duration,
    total_time: Duration,
}

impl DistillingTrainer {
    /// Creates a distilling trainer; the synthetic set is initialized
    /// lazily on the first round (it needs the client dataset).
    pub fn new(model: Arc<dyn Module>, config: DistillConfig) -> Self {
        DistillingTrainer {
            model,
            config,
            synthetic: None,
            round_robin: 0,
            dd_time: Duration::ZERO,
            total_time: Duration::ZERO,
        }
    }

    /// The synthetic set generated so far (`None` before the first
    /// round).
    pub fn synthetic(&self) -> Option<&SyntheticSet> {
        self.synthetic.as_ref()
    }

    /// Takes ownership of the synthetic set, leaving `None`.
    pub fn take_synthetic(&mut self) -> Option<SyntheticSet> {
        self.synthetic.take()
    }

    /// Wall-clock time spent in distillation (matching) work.
    pub fn dd_time(&self) -> Duration {
        self.dd_time
    }

    /// Total wall-clock time spent in local training rounds, including
    /// distillation.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// The distillation configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.config
    }

    /// The round-to-round state a checkpoint must persist to resume this
    /// trainer mid-phase: the synthetic set built so far and the
    /// round-robin matching cursor. The timing counters are advisory
    /// (they only feed overhead reports) and deliberately excluded.
    pub fn snapshot(&self) -> (Option<SyntheticSet>, usize) {
        (self.synthetic.clone(), self.round_robin)
    }

    /// Restores state captured by [`DistillingTrainer::snapshot`],
    /// resetting the timing counters.
    pub fn restore(&mut self, synthetic: Option<SyntheticSet>, round_robin: usize) {
        self.synthetic = synthetic;
        self.round_robin = round_robin;
        self.dd_time = Duration::ZERO;
        self.total_time = Duration::ZERO;
    }
}

impl std::fmt::Debug for DistillingTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DistillingTrainer(scale {}, {} synthetic samples)",
            self.config.scale,
            self.synthetic.as_ref().map_or(0, SyntheticSet::len)
        )
    }
}

impl ClientTrainer for DistillingTrainer {
    fn local_round(
        &mut self,
        mut params: Vec<Tensor>,
        data: &Dataset,
        phase: &Phase,
        rng: &mut Rng,
    ) -> LocalOutcome {
        // qd-lint: allow(determinism) -- accounting-only wall-clock: feeds
        // compute-time stats, never control flow
        let round_start = Instant::now();
        // Mirror SgdClientTrainer's stream split: stream 0 drives FL batch
        // sampling (so model updates are bit-identical to plain SGD for
        // the same seed), stream 1 drives all distillation randomness.
        let mut batch_rng = rng.fork(0);
        let mut dd_rng = rng.fork(1);
        if self.synthetic.is_none() && !data.is_empty() {
            self.synthetic = Some(if self.config.init_from_real {
                SyntheticSet::init_from_real(data, self.config.scale, &mut dd_rng)
            } else {
                SyntheticSet::init_gaussian(data, self.config.scale, &mut dd_rng)
            });
        }
        let mut samples = 0usize;
        let opt = Sgd::new(phase.lr, phase.direction);
        for _ in 0..phase.local_steps {
            if data.is_empty() {
                break;
            }
            // FL update on real data (Algorithm 2, lines 12-13, 17).
            let (x, y) = data.sample_batch(phase.batch_size, &mut batch_rng);
            samples += y.len();
            let grads = reference_gradients(self.model.as_ref(), &params, &x, &y, data.classes());

            // Class-wise gradient matching (lines 14-15), timed as DD
            // overhead.
            // qd-lint: allow(determinism) -- accounting-only wall-clock:
            // feeds compute-time stats, never control flow
            let dd_start = Instant::now();
            let owned = self
                .synthetic
                .as_ref()
                .map(SyntheticSet::owned_classes)
                .unwrap_or_default();
            if !owned.is_empty() {
                let k = self.config.classes_per_step.min(owned.len());
                for j in 0..k {
                    let class = owned[(self.round_robin + j) % owned.len()];
                    self.match_one_class(&params, data, class, &mut dd_rng);
                }
                self.round_robin = (self.round_robin + k) % owned.len();
            }
            self.dd_time += dd_start.elapsed();

            opt.step(&mut params, &grads);
        }
        self.total_time += round_start.elapsed();
        LocalOutcome {
            params,
            samples_processed: samples,
        }
    }
}

impl DistillingTrainer {
    fn match_one_class(&mut self, params: &[Tensor], data: &Dataset, class: usize, rng: &mut Rng) {
        let members = data.indices_of_class(class);
        if members.is_empty() {
            return;
        }
        let take = self.config.real_batch_per_class.min(members.len());
        let picks = rng.choose_indices(members.len(), take);
        let idx: Vec<usize> = picks.into_iter().map(|p| members[p]).collect();
        let (x, y) = data.batch(&idx);
        let syn = self
            .synthetic
            .as_ref()
            .and_then(|s| s.class_samples(class))
            .cloned();
        if let Some(syn) = syn {
            let updated = match self.config.objective {
                MatchObjective::Gradient => {
                    let refs =
                        reference_gradients(self.model.as_ref(), params, &x, &y, data.classes());
                    match_class_step(
                        self.model.as_ref(),
                        params,
                        &refs,
                        syn,
                        class,
                        data.classes(),
                        self.config.lr_syn,
                        self.config.steps_syn,
                    )
                    .0
                }
                MatchObjective::Distribution => {
                    distribution_match_step(
                        self.model.as_ref(),
                        params,
                        &x,
                        syn,
                        self.config.lr_syn,
                        self.config.steps_syn,
                    )
                    .0
                }
            };
            // `syn` above came out of this very Option, so it is Some here.
            if let Some(set) = self.synthetic.as_mut() {
                set.set_class_samples(class, updated);
            }
        }
    }
}

/// Builds one [`DistillingTrainer`] per client.
pub fn distilling_trainers(
    model: Arc<dyn Module>,
    config: DistillConfig,
    n_clients: usize,
) -> Vec<DistillingTrainer> {
    (0..n_clients)
        .map(|_| DistillingTrainer::new(model.clone(), config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_nn::Mlp;

    #[test]
    fn trainer_builds_synthetic_set_and_counts_time() {
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(200, &mut rng);
        let cfg = DistillConfig {
            scale: 50,
            classes_per_step: 2,
            ..DistillConfig::default()
        };
        let mut trainer = DistillingTrainer::new(model, cfg);
        let phase = Phase::training(1, 4, 32, 0.05);
        let out = trainer.local_round(params, &data, &phase, &mut rng);
        assert!(out.samples_processed > 0);
        let syn = trainer.synthetic().expect("synthetic set built");
        assert!(!syn.is_empty());
        assert!(trainer.dd_time() > Duration::ZERO);
        assert!(trainer.total_time() >= trainer.dd_time());
    }

    #[test]
    fn distillation_does_not_change_model_update_semantics() {
        // With the same seed, the model parameters produced by the
        // distilling trainer equal those of plain SGD: distillation is a
        // passenger.
        let mut rng = Rng::seed_from(1);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(100, &mut rng);
        let phase = Phase::training(1, 3, 16, 0.05);

        let mut plain = qd_fed::SgdClientTrainer::new(model.clone());
        let a = plain.local_round(params.clone(), &data, &phase, &mut Rng::seed_from(9));

        // The distilling trainer consumes extra RNG draws for matching, so
        // exact batch-by-batch equality is only guaranteed when matching is
        // disabled via an empty synthetic set (scale so large each class
        // still gets 1 sample; instead compare against classes_per_step=0).
        let cfg = DistillConfig {
            classes_per_step: 0,
            ..DistillConfig::default()
        };
        let mut distilling = DistillingTrainer::new(model, cfg);
        let b = distilling.local_round(params, &data, &phase, &mut Rng::seed_from(9));
        for (x, y) in a.params.iter().zip(&b.params) {
            assert!(x.max_abs_diff(y) < 1e-6);
        }
    }

    #[test]
    fn gaussian_init_option_is_respected() {
        let mut rng = Rng::seed_from(2);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(100, &mut rng);
        let cfg = DistillConfig {
            init_from_real: false,
            classes_per_step: 0,
            ..DistillConfig::default()
        };
        let mut trainer = DistillingTrainer::new(model, cfg);
        trainer.local_round(params, &data, &Phase::training(1, 1, 8, 0.05), &mut rng);
        let syn = trainer.take_synthetic().unwrap();
        // A Gaussian sample will essentially never equal a real image.
        let class = syn.owned_classes()[0];
        let t = syn.class_samples(class).unwrap();
        let first = &t.data()[..data.sample_len()];
        let copied = data
            .indices_of_class(class)
            .iter()
            .any(|&i| data.image(i) == first);
        assert!(!copied);
    }
}
