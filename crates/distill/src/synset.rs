//! Per-class synthetic sample storage for one client.

use qd_data::Dataset;
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Leading (sample-count) dimension of a tensor, zero for rank-0.
pub(crate) fn rows(t: &Tensor) -> usize {
    t.dims().first().copied().unwrap_or(0)
}

/// One client's per-class synthetic dataset `Sᵢ = ∪_c Sᵢᶜ`.
///
/// Samples are held as one `(m_c, C, H, W)` tensor per class so the
/// matching step can treat a whole class as a single differentiable leaf.
/// Classes the client does not own have no synthetic samples — this is
/// what lets QuickDrop serve class-level requests with only the owning
/// clients participating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSet {
    per_class: Vec<Option<Tensor>>,
    channels: usize,
    height: usize,
    width: usize,
}

impl SyntheticSet {
    /// Initializes `⌈|Dᶜ| / scale⌉` synthetic samples per owned class by
    /// copying random real samples (the paper found real-sample init more
    /// effective than Gaussian noise; see the `ablation_init` bench).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn init_from_real(data: &Dataset, scale: usize, rng: &mut Rng) -> Self {
        assert!(scale > 0, "scale parameter must be positive");
        let (c, h, w) = data.sample_dims();
        let mut per_class = vec![None; data.classes()];
        for (class, slot) in per_class.iter_mut().enumerate() {
            let members = data.indices_of_class(class);
            if members.is_empty() {
                continue;
            }
            let m = members.len().div_ceil(scale);
            let picks = rng.choose_indices(members.len(), m);
            let mut buf = Vec::with_capacity(m * c * h * w);
            for &p in &picks {
                buf.extend_from_slice(data.image(members[p]));
            }
            *slot = Some(Tensor::from_vec(buf, &[m, c, h, w]));
        }
        SyntheticSet {
            per_class,
            channels: c,
            height: h,
            width: w,
        }
    }

    /// Initializes from standard-normal noise with the same per-class
    /// counts as [`SyntheticSet::init_from_real`] (ablation baseline).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn init_gaussian(data: &Dataset, scale: usize, rng: &mut Rng) -> Self {
        assert!(scale > 0, "scale parameter must be positive");
        let (c, h, w) = data.sample_dims();
        let mut per_class = vec![None; data.classes()];
        for (class, slot) in per_class.iter_mut().enumerate() {
            let members = data.indices_of_class(class);
            if members.is_empty() {
                continue;
            }
            let m = members.len().div_ceil(scale);
            *slot = Some(Tensor::randn(&[m, c, h, w], rng));
        }
        SyntheticSet {
            per_class,
            channels: c,
            height: h,
            width: w,
        }
    }

    /// `(channels, height, width)` of each synthetic sample.
    pub fn sample_dims(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of classes tracked (owned or not).
    pub fn classes(&self) -> usize {
        self.per_class.len()
    }

    /// Total number of synthetic samples across classes.
    pub fn len(&self) -> usize {
        self.per_class.iter().flatten().map(rows).sum()
    }

    /// Returns `true` if no class has synthetic samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Classes for which this set holds samples.
    pub fn owned_classes(&self) -> Vec<usize> {
        (0..self.per_class.len())
            .filter(|&c| self.per_class[c].is_some())
            .collect()
    }

    /// The synthetic samples of `class`, if any, as `(m, C, H, W)`.
    pub fn class_samples(&self, class: usize) -> Option<&Tensor> {
        self.per_class.get(class).and_then(Option::as_ref)
    }

    /// Replaces the samples of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or the tensor geometry differs
    /// from the set's sample dims.
    pub fn set_class_samples(&mut self, class: usize, samples: Tensor) {
        assert!(class < self.per_class.len(), "class out of range");
        let d = samples.dims();
        assert_eq!(
            (d.get(1).copied(), d.get(2).copied(), d.get(3).copied()),
            (Some(self.channels), Some(self.height), Some(self.width)),
            "sample geometry mismatch"
        );
        self.per_class[class] = Some(samples);
    }

    /// Drops the samples of `class` (e.g. after that class was unlearned
    /// and should no longer be stored).
    pub fn remove_class(&mut self, class: usize) {
        if let Some(slot) = self.per_class.get_mut(class) {
            *slot = None;
        }
    }

    /// Materializes the whole set as a labelled [`Dataset`].
    pub fn to_dataset(&self) -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (class, samples) in self.per_class.iter().enumerate() {
            if let Some(t) = samples {
                images.extend_from_slice(t.data());
                labels.extend(std::iter::repeat_n(class, rows(t)));
            }
        }
        Dataset::new(
            images,
            labels,
            self.per_class.len(),
            self.channels,
            self.height,
            self.width,
        )
    }

    /// Materializes only `class` as a labelled [`Dataset`] (empty if not
    /// owned).
    pub fn class_dataset(&self, class: usize) -> Dataset {
        match self.class_samples(class) {
            Some(t) => {
                let labels = vec![class; rows(t)];
                Dataset::new(
                    t.data().to_vec(),
                    labels,
                    self.per_class.len(),
                    self.channels,
                    self.height,
                    self.width,
                )
            }
            None => Dataset::new(
                Vec::new(),
                Vec::new(),
                self.per_class.len(),
                self.channels,
                self.height,
                self.width,
            ),
        }
    }

    /// Materializes every class *except* `class` (the client's synthetic
    /// retain set for recovery).
    pub fn dataset_without_class(&self, class: usize) -> Dataset {
        self.to_dataset().without_class(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;

    fn data() -> Dataset {
        SyntheticDataset::Digits.generate(250, &mut Rng::seed_from(0))
    }

    #[test]
    fn init_sizes_follow_ceil_rule() {
        let d = data();
        let syn = SyntheticSet::init_from_real(&d, 100, &mut Rng::seed_from(1));
        for class in 0..10 {
            let want = d.indices_of_class(class).len().div_ceil(100);
            let got = syn.class_samples(class).map_or(0, |t| t.dims()[0]);
            assert_eq!(got, want, "class {class}");
        }
    }

    #[test]
    fn scale_one_copies_everything() {
        let d = data();
        let syn = SyntheticSet::init_from_real(&d, 1, &mut Rng::seed_from(1));
        assert_eq!(syn.len(), d.len());
    }

    #[test]
    fn real_init_draws_actual_samples() {
        let d = data();
        let syn = SyntheticSet::init_from_real(&d, 50, &mut Rng::seed_from(2));
        let class = syn.owned_classes()[0];
        let t = syn.class_samples(class).unwrap();
        let first = &t.data()[..d.sample_len()];
        let found = d
            .indices_of_class(class)
            .iter()
            .any(|&i| d.image(i) == first);
        assert!(found, "synthetic sample should be a copied real sample");
    }

    #[test]
    fn to_dataset_round_trips_counts() {
        let d = data();
        let syn = SyntheticSet::init_from_real(&d, 100, &mut Rng::seed_from(3));
        let ds = syn.to_dataset();
        assert_eq!(ds.len(), syn.len());
        assert_eq!(ds.classes(), 10);
        for class in 0..10 {
            assert_eq!(
                ds.indices_of_class(class).len(),
                syn.class_samples(class).map_or(0, |t| t.dims()[0])
            );
        }
    }

    #[test]
    fn class_dataset_and_without_class_partition() {
        let d = data();
        let syn = SyntheticSet::init_from_real(&d, 50, &mut Rng::seed_from(4));
        let f = syn.class_dataset(3);
        let r = syn.dataset_without_class(3);
        assert_eq!(f.len() + r.len(), syn.len());
        assert!(f.labels().iter().all(|&y| y == 3));
        assert!(r.labels().iter().all(|&y| y != 3));
    }

    #[test]
    fn remove_class_clears_samples() {
        let d = data();
        let mut syn = SyntheticSet::init_from_real(&d, 50, &mut Rng::seed_from(5));
        assert!(syn.class_samples(2).is_some());
        syn.remove_class(2);
        assert!(syn.class_samples(2).is_none());
    }

    #[test]
    fn gaussian_init_matches_counts_but_not_pixels() {
        let d = data();
        let real = SyntheticSet::init_from_real(&d, 100, &mut Rng::seed_from(6));
        let gauss = SyntheticSet::init_gaussian(&d, 100, &mut Rng::seed_from(6));
        assert_eq!(real.len(), gauss.len());
    }
}
