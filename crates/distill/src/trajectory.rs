//! Trajectory-matching distillation (Cazenavette et al., CVPR 2022 —
//! "Dataset Distillation by Matching Training Trajectories"), the third
//! condensation objective the paper's related work surveys.
//!
//! Where gradient matching aligns single-step gradients and distribution
//! matching aligns embeddings, trajectory matching asks more: *training on
//! the synthetic data for `n` steps, starting from a checkpoint `θ_t` of
//! an expert trajectory, should land near the expert's later checkpoint
//! `θ_{t+k}`*. The objective
//!
//! `L(S) = ‖ θ_n(S; θ_t) − θ_{t+k} ‖² / ‖ θ_t − θ_{t+k} ‖²`
//!
//! differentiates **through `n` unrolled SGD steps** — an n-step-deep
//! higher-order derivative, which this workspace's tape supports exactly
//! (every inner gradient is emitted as differentiable nodes).

use crate::SyntheticSet;
use qd_autograd::{Tape, Var};
use qd_nn::{cross_entropy, Module, Sgd};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;

/// A recorded expert trajectory: model checkpoints taken every
/// `snapshot_every` SGD steps of training on real data.
#[derive(Debug, Clone)]
pub struct ExpertTrajectory {
    checkpoints: Vec<Vec<Tensor>>,
}

impl ExpertTrajectory {
    /// Trains `model` on `data` for `steps` SGD steps, recording a
    /// checkpoint every `snapshot_every` steps (including the
    /// initialization).
    ///
    /// # Panics
    ///
    /// Panics if `snapshot_every == 0`.
    pub fn record(
        model: &dyn Module,
        data: &qd_data::Dataset,
        steps: usize,
        snapshot_every: usize,
        batch: usize,
        lr: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(snapshot_every > 0, "snapshot interval must be positive");
        let mut params = model.init(rng);
        let mut checkpoints = vec![params.clone()];
        let opt = Sgd::descent(lr);
        for step in 1..=steps {
            let (x, y) = data.sample_batch(batch, rng);
            let grads = crate::reference_gradients(model, &params, &x, &y, data.classes());
            opt.step(&mut params, &grads);
            if step % snapshot_every == 0 {
                checkpoints.push(params.clone());
            }
        }
        ExpertTrajectory { checkpoints }
    }

    /// Number of recorded checkpoints.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Returns `true` if no checkpoints were recorded.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Checkpoint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn checkpoint(&self, i: usize) -> &[Tensor] {
        &self.checkpoints[i]
    }
}

/// One trajectory-matching update of a whole [`SyntheticSet`]: starting
/// from expert checkpoint `start`, unrolls `inner_steps` SGD steps on the
/// synthetic data inside the tape, measures the normalized distance to
/// expert checkpoint `target`, and descends the synthetic pixels.
///
/// Returns the objective value before the update.
///
/// # Panics
///
/// Panics if the checkpoint indices are out of range or not increasing,
/// or the synthetic set is empty.
#[allow(clippy::too_many_arguments)]
pub fn trajectory_match_step(
    model: &dyn Module,
    expert: &ExpertTrajectory,
    start: usize,
    target: usize,
    syn: &mut SyntheticSet,
    classes: usize,
    inner_steps: usize,
    inner_lr: f32,
    syn_lr: f32,
) -> f32 {
    assert!(
        start < target && target < expert.len(),
        "bad checkpoint span"
    );
    assert!(!syn.is_empty(), "synthetic set is empty");
    let theta_start = expert.checkpoint(start);
    let theta_target = expert.checkpoint(target);

    let mut tape = Tape::new();
    // Synthetic samples are the differentiable leaves; one per class.
    let owned = syn.owned_classes();
    let mut leaves: Vec<(usize, Var)> = Vec::new();
    for &c in &owned {
        let samples = syn.class_samples(c).expect("owned class").clone();
        leaves.push((c, tape.leaf(samples)));
    }
    // Labels for the concatenated synthetic batch, class-major.
    let labels: Vec<usize> = owned
        .iter()
        .flat_map(|&c| {
            let m = syn.class_samples(c).unwrap().dims()[0];
            std::iter::repeat_n(c, m)
        })
        .collect();

    // θ lives on the tape as differentiable leaves so the inner
    // ∇θ L(S) exists; after the first unrolled step θ becomes a function
    // of the synthetic leaves, which is what the outer derivative needs.
    let mut theta: Vec<Var> = theta_start.iter().map(|t| tape.leaf(t.clone())).collect();

    for _ in 0..inner_steps {
        // Assemble the synthetic batch: per-class forward passes summed
        // into one loss (equivalent to a full-batch pass, and keeps each
        // class tensor a single leaf).
        let mut class_losses: Vec<Var> = Vec::new();
        for &(c, leaf) in &leaves {
            let m = syn.class_samples(c).unwrap().dims()[0];
            let logits = model.forward(&mut tape, &theta, leaf);
            let loss = cross_entropy(&mut tape, logits, &vec![c; m], classes);
            let weighted = tape.scale(loss, m as f32 / labels.len() as f32);
            class_losses.push(weighted);
        }
        let mut total = class_losses[0];
        for &l in &class_losses[1..] {
            total = tape.add(total, l);
        }
        // One differentiable SGD step: θ ← θ − lr ∇θ L (grads are tape
        // nodes, so θ stays a function of the synthetic leaves).
        let grads = tape.grad(total, &theta);
        theta = theta
            .iter()
            .zip(&grads)
            .map(|(&p, &g)| {
                let scaled = tape.scale(g, inner_lr);
                tape.sub(p, scaled)
            })
            .collect();
    }

    // Normalized endpoint distance to the expert's later checkpoint.
    let mut num: Option<Var> = None;
    let mut denom = 0.0f32;
    for ((p, t_target), t_start) in theta.iter().zip(theta_target).zip(theta_start) {
        let target_c = tape.constant(t_target.clone());
        let d = tape.sub(*p, target_c);
        let sq = tape.mul(d, d);
        let s = tape.sum_all(sq);
        num = Some(match num {
            Some(acc) => tape.add(acc, s),
            None => s,
        });
        let gap = t_start.sub(t_target);
        denom += gap.dot(&gap);
    }
    let num = num.expect("at least one parameter tensor");
    let objective = tape.scale(num, 1.0 / denom.max(1e-12));
    let value = tape.value(objective).item();

    // Descend the synthetic pixels through the unrolled trajectory.
    let leaf_vars: Vec<Var> = leaves.iter().map(|&(_, v)| v).collect();
    let grads = tape.grad(objective, &leaf_vars);
    for (&(c, _), g) in leaves.iter().zip(&grads) {
        let mut updated = syn.class_samples(c).unwrap().clone();
        updated.axpy(-syn_lr, tape.value(*g));
        syn.set_class_samples(c, updated);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_nn::Mlp;

    #[test]
    fn expert_trajectory_records_expected_checkpoints() {
        let mut rng = Rng::seed_from(0);
        let model = Mlp::new(&[256, 10]);
        let data = SyntheticDataset::Digits.generate(64, &mut rng);
        let expert = ExpertTrajectory::record(&model, &data, 10, 5, 16, 0.05, &mut rng);
        assert_eq!(expert.len(), 3); // init + steps 5 and 10
                                     // Checkpoints actually move.
        let d: f32 = expert.checkpoint(0)[0].max_abs_diff(&expert.checkpoint(2)[0]);
        assert!(d > 0.0);
    }

    #[test]
    fn trajectory_matching_reduces_endpoint_distance() {
        let mut rng = Rng::seed_from(1);
        let model = Mlp::new(&[256, 10]);
        let data = SyntheticDataset::Digits.generate(150, &mut rng);
        let expert = ExpertTrajectory::record(&model, &data, 12, 4, 32, 0.1, &mut rng);
        let mut syn = SyntheticSet::init_gaussian(&data, 30, &mut rng);
        let first = trajectory_match_step(&model, &expert, 0, 1, &mut syn, 10, 3, 0.1, 0.0001);
        let mut last = first;
        for _ in 0..25 {
            last = trajectory_match_step(&model, &expert, 0, 1, &mut syn, 10, 3, 0.1, 2.0);
        }
        assert!(
            last < first * 0.9,
            "trajectory objective should drop: {first} -> {last}"
        );
    }

    #[test]
    #[should_panic(expected = "bad checkpoint span")]
    fn rejects_reversed_span() {
        let mut rng = Rng::seed_from(2);
        let model = Mlp::new(&[256, 10]);
        let data = SyntheticDataset::Digits.generate(32, &mut rng);
        let expert = ExpertTrajectory::record(&model, &data, 4, 2, 8, 0.05, &mut rng);
        let mut syn = SyntheticSet::init_from_real(&data, 8, &mut rng);
        let _ = trajectory_match_step(&model, &expert, 1, 1, &mut syn, 10, 1, 0.1, 0.1);
    }
}
