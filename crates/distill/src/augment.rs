//! Recovery-time data augmentation: mixing real samples into the
//! synthetic set (Section 3.3.1).

use crate::SyntheticSet;
use qd_data::Dataset;
use qd_tensor::rng::Rng;

/// Mixes randomly selected real samples into the synthetic set at a 1:1
/// ratio per class (the paper's setting: the mixed set is ~2% of the
/// original volume), returning the dataset used for recovery and
/// relearning.
///
/// Classes without synthetic samples contribute nothing; classes with `m`
/// synthetic samples receive `min(m, |Dᶜ|)` random real samples.
///
/// # Examples
///
/// ```
/// use qd_data::SyntheticDataset;
/// use qd_distill::{augment_with_real, SyntheticSet};
/// use qd_tensor::rng::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let data = SyntheticDataset::Digits.generate(300, &mut rng);
/// let syn = SyntheticSet::init_from_real(&data, 100, &mut rng);
/// let mixed = augment_with_real(&syn, &data, &mut rng);
/// assert!(mixed.len() >= syn.len() && mixed.len() <= 2 * syn.len());
/// ```
pub fn augment_with_real(syn: &SyntheticSet, real: &Dataset, rng: &mut Rng) -> Dataset {
    let mut mixed = syn.to_dataset();
    for class in syn.owned_classes() {
        let m = syn.class_samples(class).map_or(0, crate::synset::rows);
        let members = real.indices_of_class(class);
        if members.is_empty() || m == 0 {
            continue;
        }
        let take = m.min(members.len());
        let picks = rng.choose_indices(members.len(), take);
        for p in picks {
            mixed.push(real.image(members[p]), class);
        }
    }
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;

    #[test]
    fn augmentation_doubles_each_owned_class() {
        let mut rng = Rng::seed_from(1);
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let syn = SyntheticSet::init_from_real(&data, 50, &mut rng);
        let mixed = augment_with_real(&syn, &data, &mut rng);
        for class in syn.owned_classes() {
            let m = syn.class_samples(class).unwrap().dims()[0];
            assert_eq!(mixed.indices_of_class(class).len(), 2 * m);
        }
    }

    #[test]
    fn augmentation_keeps_volume_small() {
        let mut rng = Rng::seed_from(2);
        let data = SyntheticDataset::Cifar.generate(500, &mut rng);
        let syn = SyntheticSet::init_from_real(&data, 100, &mut rng);
        let mixed = augment_with_real(&syn, &data, &mut rng);
        // ~2% of the original volume, as claimed in Section 3.3.1.
        assert!(mixed.len() <= data.len() / 10);
    }
}
