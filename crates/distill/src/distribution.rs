//! Distribution-matching distillation (Zhao & Bilen, WACV 2023) — the
//! main alternative condensation objective, implemented for the ablation
//! called out in DESIGN.md.
//!
//! Where gradient matching aligns `∇θL(S)` with `∇θL(D)` (second-order in
//! `S`), distribution matching aligns the *embedding statistics* of the
//! synthetic and real samples: it minimizes `‖ mean φθ(S) − mean φθ(D) ‖²`
//! over random feature extractors `φθ`. It is cheaper (first-order in
//! `S`) but, as the QuickDrop paper argues, less targeted at unlearning
//! because it does not compress the *gradient* information that SGA
//! replays.

use qd_autograd::{Tape, Var};
use qd_nn::Module;
use qd_tensor::Tensor;

/// Mean embedding of a batch under `model`'s logits (used as the feature
/// map φ; for an MLP/ConvNet the logit layer is a linear probe of the
/// representation).
fn mean_embedding(tape: &mut Tape, model: &dyn Module, params: &[Var], x: Var) -> Var {
    let logits = model.forward(tape, params, x);
    let rows = crate::synset::rows(tape.value(logits)).max(1);
    let summed = tape.sum_rows(logits);
    tape.scale(summed, 1.0 / rows as f32)
}

/// One distribution-matching update of a class's synthetic samples:
/// `steps` SGD steps on `‖ mean φθ(S) − mean φθ(X_real) ‖²` with respect
/// to the synthetic pixels.
///
/// Returns the updated synthetic tensor and the objective value before
/// the first step.
///
/// # Panics
///
/// Panics if `lr` is not positive or `real_x` is empty.
pub fn distribution_match_step(
    model: &dyn Module,
    params: &[Tensor],
    real_x: &Tensor,
    syn: Tensor,
    lr: f32,
    steps: usize,
) -> (Tensor, f32) {
    assert!(lr.is_finite() && lr > 0.0, "matching lr must be positive");
    assert!(!real_x.is_empty(), "real batch must be non-empty");
    let mut syn = syn;
    let mut first = f32::NAN;
    for step in 0..steps.max(1) {
        let mut tape = Tape::new();
        let p: Vec<Var> = params.iter().map(|t| tape.constant(t.clone())).collect();
        let xv = tape.constant(real_x.clone());
        let real_mean = mean_embedding(&mut tape, model, &p, xv);
        let sv = tape.leaf(syn.clone());
        let syn_mean = mean_embedding(&mut tape, model, &p, sv);
        let diff = tape.sub(syn_mean, real_mean);
        let sq = tape.mul(diff, diff);
        let obj = tape.sum_all(sq);
        if step == 0 {
            first = tape.value(obj).item();
        }
        if steps == 0 {
            break;
        }
        let Some(g) = tape.grad(obj, &[sv]).pop() else {
            break;
        };
        let mut updated = syn.clone();
        updated.axpy(-lr, tape.value(g));
        syn = updated;
    }
    (syn, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_nn::Mlp;
    use qd_tensor::rng::Rng;

    #[test]
    fn objective_decreases_under_updates() {
        let mut rng = Rng::seed_from(0);
        let model = Mlp::new(&[256, 10]);
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(80, &mut rng);
        let (real_x, _) = data.only_class(2).all();
        let syn0 = Tensor::randn(&[3, 1, 16, 16], &mut rng);
        let (_, d0) = distribution_match_step(&model, &params, &real_x, syn0.clone(), 0.5, 1);
        let mut syn = syn0;
        for _ in 0..60 {
            let (s, _) = distribution_match_step(&model, &params, &real_x, syn, 0.5, 1);
            syn = s;
        }
        let (_, d_after) = distribution_match_step(&model, &params, &real_x, syn, 0.5, 1);
        assert!(
            d_after < d0 * 0.2,
            "distribution objective should drop: {d0} -> {d_after}"
        );
    }

    #[test]
    fn matched_embedding_means_are_close() {
        let mut rng = Rng::seed_from(1);
        let model = Mlp::new(&[256, 10]);
        let params = model.init(&mut rng);
        let data = SyntheticDataset::Digits.generate(60, &mut rng);
        let (real_x, _) = data.only_class(5).all();
        let mut syn = Tensor::randn(&[2, 1, 16, 16], &mut rng);
        for _ in 0..100 {
            let (s, _) = distribution_match_step(&model, &params, &real_x, syn, 0.5, 1);
            syn = s;
        }
        let (_, residual) = distribution_match_step(&model, &params, &real_x, syn, 0.5, 1);
        assert!(residual < 0.05, "residual {residual}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lr() {
        let model = Mlp::new(&[4, 2]);
        let params = model.init(&mut Rng::seed_from(0));
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = distribution_match_step(&model, &params, &x, Tensor::zeros(&[1, 1, 2, 2]), 0.0, 1);
    }
}
