//! Optional post-hoc fine-tuning of a synthetic set across fresh model
//! initializations (Section 3.3.2, Figure 5).

use crate::{match_class_step, reference_gradients, SyntheticSet};
use qd_data::Dataset;
use qd_nn::{Module, Sgd};
use qd_tensor::rng::Rng;

/// Hyper-parameters of synthetic-set fine-tuning (the generalization-
/// targeted distillation of Zhao et al., run over multiple random
/// parameter initializations).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FinetuneConfig {
    /// Outer steps `F`: fresh model initializations (Figure 5 sweeps
    /// 0..=200).
    pub outer_steps: usize,
    /// Inner loop iterations per initialization (paper fixes 50; scaled
    /// configs use less).
    pub inner_steps: usize,
    /// Model training steps on the synthetic data after each inner
    /// matching pass.
    pub model_steps: usize,
    /// Model learning rate during fine-tuning.
    pub lr_model: f32,
    /// Synthetic-sample learning rate.
    pub lr_syn: f32,
    /// Mini-batch cap for per-class real reference gradients.
    pub real_batch_per_class: usize,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            outer_steps: 10,
            inner_steps: 5,
            model_steps: 2,
            lr_model: 0.05,
            lr_syn: 0.1,
            real_batch_per_class: 32,
        }
    }
}

/// Fine-tunes `syn` for generalization: repeatedly re-initializes the
/// model and alternates class-wise gradient matching with short training
/// runs on the synthetic data, so the synthetic samples stop being
/// specialized to one training trajectory.
///
/// Returns the number of gradient evaluations performed on *real* data
/// (the cost accounting of Figure 5 right).
pub fn finetune(
    model: &dyn Module,
    syn: &mut SyntheticSet,
    real: &Dataset,
    cfg: &FinetuneConfig,
    rng: &mut Rng,
) -> usize {
    let mut real_grad_evals = 0usize;
    if syn.is_empty() || real.is_empty() {
        return 0;
    }
    for _ in 0..cfg.outer_steps {
        let mut params = model.init(rng);
        for _ in 0..cfg.inner_steps {
            for class in syn.owned_classes() {
                let members = real.indices_of_class(class);
                if members.is_empty() {
                    continue;
                }
                let take = cfg.real_batch_per_class.min(members.len());
                let picks = rng.choose_indices(members.len(), take);
                let idx: Vec<usize> = picks.into_iter().map(|p| members[p]).collect();
                let (x, y) = real.batch(&idx);
                let refs = reference_gradients(model, &params, &x, &y, real.classes());
                real_grad_evals += y.len();
                if let Some(samples) = syn.class_samples(class).cloned() {
                    let (updated, _) = match_class_step(
                        model,
                        &params,
                        &refs,
                        samples,
                        class,
                        real.classes(),
                        cfg.lr_syn,
                        1,
                    );
                    syn.set_class_samples(class, updated);
                }
            }
            // Advance the model on the synthetic data so later matching
            // sees a different parameter point (Zhao et al.'s alternation).
            let syn_data = syn.to_dataset();
            let opt = Sgd::descent(cfg.lr_model);
            for _ in 0..cfg.model_steps {
                let (x, y) = syn_data.sample_batch(syn_data.len().min(64), rng);
                let grads = reference_gradients(model, &params, &x, &y, real.classes());
                opt.step(&mut params, &grads);
            }
        }
    }
    real_grad_evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_eval::accuracy;
    use qd_nn::Mlp;

    #[test]
    fn finetuning_counts_real_gradient_work() {
        let mut rng = Rng::seed_from(0);
        let model = Mlp::new(&[256, 10]);
        let real = SyntheticDataset::Digits.generate(200, &mut rng);
        let mut syn = SyntheticSet::init_from_real(&real, 50, &mut rng);
        let cfg = FinetuneConfig {
            outer_steps: 2,
            inner_steps: 2,
            ..FinetuneConfig::default()
        };
        let evals = finetune(&model, &mut syn, &real, &cfg, &mut rng);
        assert!(evals > 0);
    }

    #[test]
    fn finetuning_improves_downstream_training_accuracy() {
        // Train a fresh model on the synthetic set before and after
        // fine-tuning; fine-tuned synthetic data should teach at least as
        // well (typically better).
        let mut rng = Rng::seed_from(1);
        let model = Mlp::new(&[256, 10]);
        let real = SyntheticDataset::Digits.generate(400, &mut rng);
        let test = SyntheticDataset::Digits.generate(200, &mut rng);
        let raw = SyntheticSet::init_gaussian(&real, 20, &mut Rng::seed_from(2));
        let mut tuned = raw.clone();
        let cfg = FinetuneConfig {
            outer_steps: 3,
            inner_steps: 12,
            model_steps: 2,
            lr_syn: 1.0,
            ..FinetuneConfig::default()
        };
        finetune(&model, &mut tuned, &real, &cfg, &mut rng);

        let train_on = |syn: &SyntheticSet, seed: u64| {
            let data = syn.to_dataset();
            let mut params = model.init(&mut Rng::seed_from(seed));
            let mut r = Rng::seed_from(seed + 1);
            let opt = Sgd::descent(0.1);
            for _ in 0..60 {
                let (x, y) = data.sample_batch(32, &mut r);
                let grads = reference_gradients(&model, &params, &x, &y, 10);
                opt.step(&mut params, &grads);
            }
            accuracy(&model, &params, &test)
        };
        let acc_raw = train_on(&raw, 7);
        let acc_tuned = train_on(&tuned, 7);
        assert!(
            acc_tuned > acc_raw + 0.1,
            "fine-tuning should improve noise-initialized synthetic data: {acc_raw} -> {acc_tuned}"
        );
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut rng = Rng::seed_from(3);
        let model = Mlp::new(&[256, 10]);
        let real = SyntheticDataset::Digits.generate(50, &mut rng);
        let empty_real = real.subset(&[]);
        let mut syn = SyntheticSet::init_from_real(&real, 10, &mut rng);
        assert_eq!(
            finetune(
                &model,
                &mut syn,
                &empty_real,
                &FinetuneConfig::default(),
                &mut rng
            ),
            0
        );
    }
}
