//! Property-based tests of the synthetic-set size rule and dataset
//! round-trips.

use proptest::prelude::*;
use qd_data::SyntheticDataset;
use qd_distill::SyntheticSet;
use qd_tensor::rng::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sizes_follow_the_ceil_rule_for_any_scale(
        scale in 1usize..500,
        n in 20usize..200,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from(seed);
        let data = SyntheticDataset::Digits.generate(n, &mut rng);
        let syn = SyntheticSet::init_from_real(&data, scale, &mut rng);
        for class in 0..10 {
            let real = data.indices_of_class(class).len();
            let got = syn.class_samples(class).map_or(0, |t| t.dims()[0]);
            prop_assert_eq!(got, real.div_ceil(scale), "class {} at scale {}", class, scale);
        }
    }

    #[test]
    fn synthetic_size_is_monotone_nonincreasing_in_scale(
        n in 50usize..200,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from(seed);
        let data = SyntheticDataset::Digits.generate(n, &mut rng);
        let mut last = usize::MAX;
        for scale in [1usize, 2, 5, 10, 50, 1000] {
            let syn = SyntheticSet::init_from_real(&data, scale, &mut Rng::seed_from(seed));
            prop_assert!(syn.len() <= last, "scale {} grew the set", scale);
            last = syn.len();
        }
    }

    #[test]
    fn to_dataset_round_trips_membership(
        n in 30usize..120,
        scale in 1usize..50,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from(seed);
        let data = SyntheticDataset::Cifar.generate(n, &mut rng);
        let syn = SyntheticSet::init_from_real(&data, scale, &mut rng);
        let ds = syn.to_dataset();
        prop_assert_eq!(ds.len(), syn.len());
        for class in syn.owned_classes() {
            let m = syn.class_samples(class).unwrap().dims()[0];
            prop_assert_eq!(ds.indices_of_class(class).len(), m);
        }
        // Class partition is exact.
        let mut covered = 0;
        for class in 0..ds.classes() {
            covered += ds.indices_of_class(class).len();
        }
        prop_assert_eq!(covered, ds.len());
    }
}
