//! Property-based tests of the gradient-matching distance: bounds,
//! identity, per-row scale invariance, and symmetry of the induced
//! geometry.

use proptest::prelude::*;
use qd_autograd::Tape;
use qd_distill::matching_distance;
use qd_tensor::Tensor;

fn mat(values: Vec<f32>, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(values, &[rows, cols])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distance_is_within_cosine_bounds(
        v in proptest::collection::vec(-2.0f32..2.0, 12),
        w in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        // Rows with non-trivial norms: shift away from zero.
        let a = mat(v.iter().map(|x| x + 3.0).collect(), 3, 4);
        let b = mat(w.iter().map(|x| x + 3.0).collect(), 3, 4);
        let mut tape = Tape::new();
        let av = tape.leaf(a);
        let d = matching_distance(&mut tape, &[av], &[b]);
        let val = tape.value(d).item();
        // Each row contributes 1 - cos in [0, 2].
        prop_assert!((-1e-3..=6.0 + 1e-3).contains(&val), "distance {val}");
    }

    #[test]
    fn distance_to_self_is_zero(
        v in proptest::collection::vec(0.5f32..2.0, 8),
    ) {
        let a = mat(v, 2, 4);
        let mut tape = Tape::new();
        let av = tape.leaf(a.clone());
        let d = matching_distance(&mut tape, &[av], &[a]);
        prop_assert!(tape.value(d).item().abs() < 1e-3);
    }

    #[test]
    fn distance_is_invariant_to_positive_row_scaling(
        v in proptest::collection::vec(0.5f32..2.0, 8),
        s in 0.1f32..10.0,
    ) {
        let a = mat(v.clone(), 2, 4);
        let scaled = a.scale(s);
        let mut tape = Tape::new();
        let av = tape.leaf(scaled);
        let d = matching_distance(&mut tape, &[av], &[a]);
        prop_assert!(tape.value(d).item().abs() < 1e-2);
    }

    #[test]
    fn negating_one_layer_adds_two_per_row(
        v in proptest::collection::vec(0.5f32..2.0, 8),
    ) {
        let a = mat(v, 2, 4);
        let mut tape = Tape::new();
        let av = tape.leaf(a.scale(-1.0));
        let d = matching_distance(&mut tape, &[av], &[a]);
        prop_assert!((tape.value(d).item() - 4.0).abs() < 1e-2); // 2 rows x 2
    }

    #[test]
    fn multi_layer_distance_is_sum_of_layers(
        v in proptest::collection::vec(0.5f32..2.0, 8),
        w in proptest::collection::vec(0.5f32..2.0, 6),
    ) {
        let a1 = mat(v.clone(), 2, 4);
        let a2 = mat(w.clone(), 2, 3);
        let b1 = a1.scale(-1.0);
        let b2 = a2.clone();
        // Layer 1 contributes ~4 (opposite), layer 2 contributes ~0.
        let mut tape = Tape::new();
        let l1 = tape.leaf(b1);
        let l2 = tape.leaf(b2);
        let d = matching_distance(&mut tape, &[l1, l2], &[a1, a2]);
        prop_assert!((tape.value(d).item() - 4.0).abs() < 1e-2);
    }
}
