//! FedEraser: unlearning by calibrated replay of stored round updates
//! (Liu et al., IWQoS 2021).

use crate::{
    retain_override, Capabilities, Efficiency, MethodOutcome, UnlearnRequest, UnlearningMethod,
};
use qd_data::Dataset;
use qd_fed::ClientTrainer as _;
use qd_fed::{Federation, Phase, PhaseStats, RoundRecord, SgdClientTrainer};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use std::time::Instant;

/// FedEraser trades *storage* (per-round client updates recorded during
/// the original training; see [`Federation::set_record_history`]) for
/// unlearning time: it replays the training trajectory, at each retained
/// round asking the remaining clients for a **short** local update whose
/// *direction* calibrates the stored update's *magnitude*:
///
/// `Ũ_j = ‖U_j^stored‖ · U_j^new / ‖U_j^new‖`  (per parameter tensor)
///
/// Contributions of the forgotten data are simply excluded from the
/// replay. A short standard recovery phase follows, as in the paper's
/// Table 2.
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::FedEraser;
///
/// let m = FedEraser::new(2, 8, 0.01, Phase::training(1, 4, 32, 0.01));
/// assert_eq!(m.calibration_steps(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FedEraser {
    calibration_steps: usize,
    batch_size: usize,
    lr: f32,
    recover_phase: Phase,
}

impl FedEraser {
    /// Creates a FedEraser with `calibration_steps` local steps per
    /// retained round (far fewer than the original `T` — this is where the
    /// speedup over retraining comes from) and a final recovery phase.
    pub fn new(calibration_steps: usize, batch_size: usize, lr: f32, recover_phase: Phase) -> Self {
        FedEraser {
            calibration_steps,
            batch_size,
            lr,
            recover_phase,
        }
    }

    /// Local steps used to estimate each calibration direction.
    pub fn calibration_steps(&self) -> usize {
        self.calibration_steps
    }

    fn calibrate_round(
        &self,
        fed: &Federation,
        record: &RoundRecord,
        retain: &[Option<Dataset>],
        current: &[Tensor],
        rng: &mut Rng,
    ) -> (Vec<Tensor>, usize) {
        // Ask each retained participant of the recorded round for a short
        // update from the *current* calibrated model.
        let mut aggregated: Vec<Tensor> = current.iter().map(|t| Tensor::zeros(t.dims())).collect();
        let mut samples = 0usize;
        let mut total_weight = 0.0f32;
        let phase = Phase::training(1, self.calibration_steps, self.batch_size, self.lr);
        for (slot, &client) in record.participants.iter().enumerate() {
            let Some(data) = retain[client].as_ref() else {
                continue; // this client's contribution is being forgotten
            };
            let mut trainer = SgdClientTrainer::new(fed.model().clone());
            let mut crng = rng.fork(client as u64);
            let outcome = trainer.local_round(current.to_vec(), data, &phase, &mut crng);
            samples += outcome.samples_processed;
            let weight = data.len() as f32;
            total_weight += weight;
            for (j, (new_p, cur_p)) in outcome.params.iter().zip(current).enumerate() {
                let new_update = new_p.sub(cur_p);
                let stored_norm = record.updates[slot][j].norm();
                let new_norm = new_update.norm();
                let calibrated = if new_norm > 1e-12 {
                    new_update.scale(stored_norm / new_norm)
                } else {
                    new_update
                };
                aggregated[j].axpy(weight, &calibrated);
            }
        }
        if total_weight > 0.0 {
            for t in &mut aggregated {
                *t = t.scale(1.0 / total_weight);
            }
        }
        (aggregated, samples)
    }
}

impl UnlearningMethod for FedEraser {
    fn name(&self) -> &'static str {
        "FedEraser"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: true,
            client_level: true,
            relearn: true,
            storage_efficient: false, // linear-in-rounds update storage
            computation: Efficiency::Low,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        assert!(
            !fed.history().is_empty(),
            "FedEraser requires recorded update history; call \
             Federation::set_record_history(true) before training"
        );
        let retain = retain_override(fed, request);
        // qd-lint: allow(determinism) -- accounting-only wall-clock: feeds
        // MethodOutcome compute time, never control flow
        let start = Instant::now();
        let history: Vec<RoundRecord> = fed.history().to_vec();
        // qd-lint: allow(panic-safety) -- non-empty history is asserted at
        // entry; history[0] cannot be out of bounds
        let mut params = history[0].global_before.clone();
        let mut samples = 0usize;
        for record in &history {
            let (delta, s) = self.calibrate_round(fed, record, &retain, &params, rng);
            samples += s;
            for (p, d) in params.iter_mut().zip(&delta) {
                p.axpy(1.0, d);
            }
        }
        fed.set_global(params);
        let data_size: usize = retain.iter().flatten().map(Dataset::len).sum();
        let model_scalars: usize = fed.global().iter().map(qd_tensor::Tensor::len).sum();
        let retained_exchanges: usize = history
            .iter()
            .map(|r| {
                r.participants
                    .iter()
                    .filter(|&&i| retain[i].is_some())
                    .count()
            })
            .sum();
        let unlearn = PhaseStats {
            rounds: history.len(),
            samples_processed: samples,
            data_size,
            wall: start.elapsed(),
            download_scalars: retained_exchanges * model_scalars,
            upload_scalars: retained_exchanges * model_scalars,
            ..PhaseStats::default()
        };
        let post_unlearn_params = fed.global().to_vec();

        let mut trainers = qd_fed::sgd_trainers(fed.model().clone(), fed.n_clients());
        let recovery = fed.run_phase(&mut trainers, Some(&retain), &self.recover_phase, rng);
        MethodOutcome {
            unlearn,
            recovery,
            post_unlearn_params,
            guard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_eval::split_accuracy;
    use qd_fed::sgd_trainers;
    use qd_nn::{Mlp, Module};
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "recorded update history")]
    fn requires_history() {
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(40, &mut rng);
        let mut fed = Federation::new(model, vec![data], &mut rng);
        let mut m = FedEraser::new(2, 8, 0.05, Phase::training(1, 2, 8, 0.05));
        let _ = m.unlearn(&mut fed, UnlearnRequest::Class(0), &mut rng);
    }

    #[test]
    fn history_storage_grows_linearly_with_rounds() {
        let mut rng = Rng::seed_from(5);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(60, &mut rng);
        let parts = partition_iid(data.len(), 3, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        fed.set_record_history(true);
        let mut trainers = sgd_trainers(model, 3);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(2, 1, 8, 0.05),
            &mut rng,
        );
        let after_two = fed.history_storage_scalars();
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(2, 1, 8, 0.05),
            &mut rng,
        );
        let after_four = fed.history_storage_scalars();
        assert_eq!(
            after_four,
            2 * after_two,
            "storage should scale with rounds"
        );
        // Per round: global model + 3 client updates = 4 model-sizes.
        let model_scalars = 256 * 10 + 10;
        assert_eq!(after_two, 2 * 4 * model_scalars);
    }

    #[test]
    fn federaser_unlearns_with_fewer_samples_than_retraining() {
        let mut rng = Rng::seed_from(1);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let test = SyntheticDataset::Digits.generate(200, &mut rng);
        let parts = partition_iid(data.len(), 4, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        fed.set_record_history(true);
        let train_phase = Phase::training(6, 8, 32, 0.1);
        let mut trainers = sgd_trainers(model.clone(), 4);
        let train_stats = fed.run_phase(&mut trainers, None, &train_phase, &mut rng);
        fed.set_record_history(false);

        let mut m = FedEraser::new(2, 32, 0.1, Phase::training(2, 8, 32, 0.05));
        let outcome = m.unlearn(&mut fed, UnlearnRequest::Class(7), &mut rng);
        // Calibration is much cheaper than the original training.
        assert!(outcome.unlearn.samples_processed < train_stats.samples_processed / 2);

        let (f, r) = crate::fr_eval_sets(&fed, UnlearnRequest::Class(7), &test);
        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa < 0.25, "forget accuracy {fa}");
        assert!(ra > 0.5, "retain accuracy {ra}");
    }
}
