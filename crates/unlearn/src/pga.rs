//! PGA: projected gradient ascent unlearning (Halimi et al., 2022).
//!
//! The paper's related-work section cites this as the other SGA-family
//! approach: the *forgetting client itself* maximizes its local loss, but
//! the ascent is **projected** onto an ℓ₂-ball around the reference model
//! so the parameters cannot run off to a degenerate region (the failure
//! mode plain SGA mitigates with recovery rounds). A standard recovery
//! phase on the retain data follows.

use crate::{
    forget_override, retain_override, Capabilities, Efficiency, MethodOutcome, UnlearnRequest,
    UnlearningMethod,
};
use qd_fed::{sgd_trainers, Federation, Phase, PhaseStats};
use qd_nn::Sgd;
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use std::time::Instant;

/// Projected-gradient-ascent unlearning of a client (or class): local
/// ascent steps on the forget data, each followed by projection onto the
/// ball `‖θ − θ_ref‖₂ ≤ radius · ‖θ_ref‖₂` around the trained model.
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::{PgaHalimi, UnlearningMethod};
///
/// let m = PgaHalimi::new(10, 32, 0.05, 0.2, Phase::training(2, 8, 32, 0.05));
/// assert!(m.capabilities().client_level);
/// assert!(m.capabilities().class_level);
/// ```
#[derive(Debug, Clone)]
pub struct PgaHalimi {
    ascent_steps: usize,
    batch_size: usize,
    lr: f32,
    radius: f32,
    recover_phase: Phase,
}

impl PgaHalimi {
    /// Creates the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite.
    pub fn new(
        ascent_steps: usize,
        batch_size: usize,
        lr: f32,
        radius: f32,
        recover_phase: Phase,
    ) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "projection radius must be positive"
        );
        PgaHalimi {
            ascent_steps,
            batch_size,
            lr,
            radius,
            recover_phase,
        }
    }

    /// The relative projection radius.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// Projects `params` onto the ball of relative radius
    /// `self.radius` centred at `reference` (global ℓ₂ over all tensors).
    fn project(&self, params: &mut [Tensor], reference: &[Tensor]) {
        let mut dist_sq = 0.0f32;
        let mut ref_sq = 0.0f32;
        for (p, r) in params.iter().zip(reference) {
            let d = p.sub(r);
            dist_sq += d.dot(&d);
            ref_sq += r.dot(r);
        }
        let limit = self.radius * ref_sq.sqrt();
        let dist = dist_sq.sqrt();
        if dist > limit && dist > 0.0 {
            let shrink = limit / dist;
            for (p, r) in params.iter_mut().zip(reference) {
                let d = p.sub(r);
                *p = r.clone();
                p.axpy(shrink, &d);
            }
        }
    }
}

impl UnlearningMethod for PgaHalimi {
    fn name(&self) -> &'static str {
        "PGA"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: true,
            client_level: true,
            relearn: true,
            storage_efficient: true,
            computation: Efficiency::Medium,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        // qd-lint: allow(determinism) -- accounting-only wall-clock: feeds
        // MethodOutcome compute time, never control flow
        let start = Instant::now();
        let reference = fed.global().to_vec();
        let forget = forget_override(fed, request);
        let mut params = reference.clone();
        let opt = Sgd::ascent(self.lr);
        let mut samples = 0usize;
        let mut data_size = 0usize;
        // Each holder of forget data runs local projected ascent from the
        // current model; holders are processed sequentially and their
        // results averaged with data-size weights (one "round").
        let holders: Vec<usize> = (0..fed.n_clients())
            .filter(|&i| forget[i].as_ref().is_some_and(|d| !d.is_empty()))
            .collect();
        if !holders.is_empty() {
            data_size = holders
                .iter()
                // qd-lint: allow(panic-safety) -- holders are filtered to
                // clients whose forget split is Some and non-empty
                .map(|&i| forget[i].as_ref().unwrap().len())
                .sum();
            let mut survivors: Vec<(usize, Vec<Tensor>)> = Vec::with_capacity(holders.len());
            for &i in &holders {
                // qd-lint: allow(panic-safety) -- holders are filtered to
                // clients whose forget split is Some and non-empty
                let data = forget[i].as_ref().unwrap();
                let mut local = reference.clone();
                let mut crng = rng.fork(i as u64);
                for _ in 0..self.ascent_steps {
                    let (x, y) = data.sample_batch(self.batch_size, &mut crng);
                    samples += y.len();
                    let grads = crate::method::batch_grads(
                        fed.model().as_ref(),
                        &local,
                        &x,
                        &y,
                        data.classes(),
                    );
                    opt.step(&mut local, &grads);
                    self.project(&mut local, &reference);
                }
                // Ascent results bypass round ingestion (this method
                // installs the aggregate via `set_global`), so screen
                // each holder's delta through the same update guard a
                // round upload would face: one NaN-emitting holder must
                // not poison the aggregate.
                if fed.screen_update(i, &reference, &local).is_err() {
                    continue;
                }
                survivors.push((data.len(), local));
            }
            if !survivors.is_empty() {
                let total: usize = survivors.iter().map(|(n, _)| n).sum();
                let mut aggregated: Vec<Tensor> =
                    reference.iter().map(|t| Tensor::zeros(t.dims())).collect();
                for (n, local) in &survivors {
                    let weight = *n as f32 / total as f32;
                    for (a, p) in aggregated.iter_mut().zip(local) {
                        a.axpy(weight, p);
                    }
                }
                params = aggregated;
            }
        }
        fed.set_global(params);
        let model_scalars: usize = reference.iter().map(Tensor::len).sum();
        let unlearn = PhaseStats {
            rounds: 1,
            samples_processed: samples,
            data_size,
            wall: start.elapsed(),
            download_scalars: holders.len() * model_scalars,
            upload_scalars: holders.len() * model_scalars,
            ..PhaseStats::default()
        };
        let post_unlearn_params = fed.global().to_vec();

        let retain = retain_override(fed, request);
        let mut trainers = sgd_trainers(fed.model().clone(), fed.n_clients());
        let recovery = fed.run_phase(&mut trainers, Some(&retain), &self.recover_phase, rng);
        MethodOutcome {
            unlearn,
            recovery,
            post_unlearn_params,
            guard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, Dataset, SyntheticDataset};
    use qd_eval::split_accuracy;
    use qd_nn::{Mlp, Module};
    use std::sync::Arc;

    #[test]
    fn projection_keeps_parameters_near_reference() {
        let m = PgaHalimi::new(1, 8, 0.1, 0.1, Phase::training(1, 1, 8, 0.1));
        let reference = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])]; // norm 5
        let mut params = vec![Tensor::from_vec(vec![13.0, 4.0], &[2])]; // dist 10
        m.project(&mut params, &reference);
        let d = params[0].sub(&reference[0]);
        assert!(
            (d.norm() - 0.5).abs() < 1e-4,
            "projected distance {}",
            d.norm()
        );
        // Inside the ball: untouched.
        let mut near = vec![Tensor::from_vec(vec![3.1, 4.0], &[2])];
        m.project(&mut near, &reference);
        assert!((near[0].data()[0] - 3.1).abs() < 1e-6);
    }

    #[test]
    fn pga_forgets_class_and_recovers() {
        let mut rng = Rng::seed_from(3);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let test = SyntheticDataset::Digits.generate(200, &mut rng);
        let parts = partition_iid(data.len(), 4, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        let mut trainers = sgd_trainers(model.clone(), 4);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(8, 10, 32, 0.1),
            &mut rng,
        );

        let request = UnlearnRequest::Class(3);
        let (f, r) = crate::fr_eval_sets(&fed, request, &test);
        let (f0, _) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(f0 > 0.4, "class known before ({f0})");

        let mut m = PgaHalimi::new(15, 32, 0.1, 0.5, Phase::training(2, 8, 32, 0.1));
        m.unlearn(&mut fed, request, &mut rng);
        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa < 0.25, "forget accuracy {fa}");
        assert!(ra > 0.5, "retain accuracy {ra}");
    }

    #[test]
    fn nan_emitting_unlearn_client_is_screened_not_aggregated() {
        let mut rng = Rng::seed_from(5);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let clean = SyntheticDataset::Digits.generate(200, &mut rng);
        // Client 1's forget data carries NaN features: its local ascent
        // produces non-finite parameters — the unlearn-phase analogue of
        // a NanEmitter fault, which round ingestion would catch but the
        // direct `set_global` path historically did not.
        let poisoned = {
            let (c, h, w) = clean.sample_dims();
            let n = 40usize;
            let labels: Vec<usize> = (0..n).map(|i| i % clean.classes()).collect();
            Dataset::new(
                vec![f32::NAN; n * c * h * w],
                labels,
                clean.classes(),
                c,
                h,
                w,
            )
        };
        let clients = vec![clean, poisoned];
        let mut fed = Federation::new(model, clients, &mut rng);

        let mut m = PgaHalimi::new(5, 32, 0.1, 0.5, Phase::training(1, 4, 32, 0.1));
        // Class-level request: both clients hold forget data, and only
        // the poisoned holder's ascent result must be dropped.
        let outcome = m.unlearn(&mut fed, UnlearnRequest::Class(3), &mut rng);
        assert!(
            !qd_nn::params_have_non_finite(&outcome.post_unlearn_params),
            "NaN holder reached the aggregate"
        );
        assert!(
            !qd_nn::params_have_non_finite(fed.global()),
            "recovered model must be finite"
        );
        // The screen charged the violation to the poisoned client only.
        assert!(fed.guard().state().violations[1] >= 1);
        assert_eq!(fed.guard().state().violations[0], 0);
    }

    #[test]
    fn ascent_stays_within_the_ball_before_recovery() {
        let mut rng = Rng::seed_from(4);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(100, &mut rng);
        let mut fed = Federation::new(model.clone(), vec![data], &mut rng);
        let reference = fed.global().to_vec();
        let radius = 0.05;
        let mut m = PgaHalimi::new(20, 16, 0.5, radius, Phase::training(0, 1, 8, 0.1));
        let outcome = m.unlearn(&mut fed, UnlearnRequest::Client(0), &mut rng);
        let mut dist_sq = 0.0f32;
        let mut ref_sq = 0.0f32;
        for (p, r) in outcome.post_unlearn_params.iter().zip(&reference) {
            let d = p.sub(r);
            dist_sq += d.dot(&d);
            ref_sq += r.dot(r);
        }
        assert!(
            dist_sq.sqrt() <= radius * ref_sq.sqrt() * 1.001,
            "ascent escaped the projection ball"
        );
    }
}
