//! Unlearning requests and the forget/retain data views they induce.

use qd_data::Dataset;
use qd_fed::Federation;

/// What the parameter server has been asked to forget (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnlearnRequest {
    /// Erase all knowledge of one class: `D_f = ∪_i D_i^c`.
    Class(usize),
    /// Erase one client's entire contribution: `D_f = D_i`.
    Client(usize),
}

impl std::fmt::Display for UnlearnRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnlearnRequest::Class(c) => write!(f, "class {c}"),
            UnlearnRequest::Client(i) => write!(f, "client {i}"),
        }
    }
}

// Manual impls: the vendored serde derive handles only fieldless enums,
// and these variants carry their target index. A request is persisted in
// the durable unlearning-request journal (`qd-core`), so the encoding —
// `{"kind": "class"|"client", "target": N}` — is part of the journal's
// on-disk format.
impl serde::Serialize for UnlearnRequest {
    fn to_value(&self) -> serde::Value {
        let (kind, target) = match self {
            UnlearnRequest::Class(c) => ("class", *c),
            UnlearnRequest::Client(i) => ("client", *i),
        };
        serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("target".to_string(), serde::Serialize::to_value(&target)),
        ])
    }
}

impl serde::Deserialize for UnlearnRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let kind: String = serde::Deserialize::from_value(v.field("UnlearnRequest", "kind")?)?;
        let target: usize = serde::Deserialize::from_value(v.field("UnlearnRequest", "target")?)?;
        match kind.as_str() {
            "class" => Ok(UnlearnRequest::Class(target)),
            "client" => Ok(UnlearnRequest::Client(target)),
            other => Err(serde::DeError::new(format!(
                "unknown UnlearnRequest kind {other:?}"
            ))),
        }
    }
}

/// Per-client view of the forget dataset `D_f`: entry `i` is the part of
/// `D_f` held by client `i` (`None` when the client holds none, excluding
/// it from unlearning rounds).
pub fn forget_override(fed: &Federation, request: UnlearnRequest) -> Vec<Option<Dataset>> {
    (0..fed.n_clients())
        .map(|i| match request {
            UnlearnRequest::Class(c) => {
                let f = fed.client_data(i).only_class(c);
                (!f.is_empty()).then_some(f)
            }
            UnlearnRequest::Client(target) => {
                (i == target && !fed.client_data(i).is_empty()).then(|| fed.client_data(i).clone())
            }
        })
        .collect()
}

/// Per-client view of the retain dataset `D \ D_f` (for recovery and
/// retraining).
pub fn retain_override(fed: &Federation, request: UnlearnRequest) -> Vec<Option<Dataset>> {
    (0..fed.n_clients())
        .map(|i| match request {
            UnlearnRequest::Class(c) => {
                let r = fed.client_data(i).without_class(c);
                (!r.is_empty()).then_some(r)
            }
            UnlearnRequest::Client(target) => {
                (i != target && !fed.client_data(i).is_empty()).then(|| fed.client_data(i).clone())
            }
        })
        .collect()
}

/// The evaluation F-Set and R-Set for a request.
///
/// * Class-level: the *test* samples of the target class vs the rest
///   (class-wise testing accuracy, Table 2).
/// * Client-level: the target client's training data vs the union of the
///   remaining clients' training data (Table 4).
pub fn fr_eval_sets(
    fed: &Federation,
    request: UnlearnRequest,
    test: &Dataset,
) -> (Dataset, Dataset) {
    match request {
        UnlearnRequest::Class(c) => (test.only_class(c), test.without_class(c)),
        UnlearnRequest::Client(target) => {
            let f = fed.client_data(target).clone();
            let mut r = f.empty_like();
            for i in 0..fed.n_clients() {
                if i != target {
                    r.extend(fed.client_data(i));
                }
            }
            (f, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_nn::{Mlp, Module};
    use qd_tensor::rng::Rng;
    use std::sync::Arc;

    fn federation(n_clients: usize) -> (Federation, Dataset, Rng) {
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(120, &mut rng);
        let parts = partition_iid(data.len(), n_clients, &mut rng);
        let clients = parts.iter().map(|p| data.subset(p)).collect();
        let test = SyntheticDataset::Digits.generate(60, &mut rng);
        (Federation::new(model, clients, &mut rng), test, rng)
    }

    #[test]
    fn class_forget_override_collects_only_target_class() {
        let (fed, _, _) = federation(3);
        let f = forget_override(&fed, UnlearnRequest::Class(4));
        for (i, part) in f.iter().enumerate() {
            if let Some(d) = part {
                assert!(d.labels().iter().all(|&y| y == 4));
                assert_eq!(d.len(), fed.client_data(i).indices_of_class(4).len());
            }
        }
    }

    #[test]
    fn class_retain_override_excludes_target_class() {
        let (fed, _, _) = federation(3);
        let r = retain_override(&fed, UnlearnRequest::Class(4));
        for part in r.iter().flatten() {
            assert!(part.labels().iter().all(|&y| y != 4));
        }
    }

    #[test]
    fn client_overrides_select_single_client() {
        let (fed, _, _) = federation(3);
        let f = forget_override(&fed, UnlearnRequest::Client(1));
        assert!(f[0].is_none() && f[2].is_none());
        assert_eq!(f[1].as_ref().unwrap().len(), fed.client_data(1).len());
        let r = retain_override(&fed, UnlearnRequest::Client(1));
        assert!(r[1].is_none());
        assert!(r[0].is_some() && r[2].is_some());
    }

    #[test]
    fn fr_eval_sets_partition_for_class_requests() {
        let (fed, test, _) = federation(2);
        let (f, r) = fr_eval_sets(&fed, UnlearnRequest::Class(0), &test);
        assert_eq!(f.len() + r.len(), test.len());
        assert!(f.labels().iter().all(|&y| y == 0));
    }

    #[test]
    fn fr_eval_sets_for_client_requests_use_training_data() {
        let (fed, test, _) = federation(3);
        let (f, r) = fr_eval_sets(&fed, UnlearnRequest::Client(2), &test);
        assert_eq!(f.len(), fed.client_data(2).len());
        let total: usize = (0..3).map(|i| fed.client_data(i).len()).sum();
        assert_eq!(r.len(), total - f.len());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(UnlearnRequest::Class(9).to_string(), "class 9");
        assert_eq!(UnlearnRequest::Client(3).to_string(), "client 3");
    }
}
