//! Unlearning requests, the forget/retain data views they induce, and
//! the merge algebra that lets a serving front end coalesce compatible
//! requests into one batch.

use qd_data::Dataset;
use qd_fed::Federation;
use std::collections::BTreeSet;

/// What the parameter server has been asked to forget (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnlearnRequest {
    /// Erase all knowledge of one class: `D_f = ∪_i D_i^c`.
    Class(usize),
    /// Erase one client's entire contribution: `D_f = D_i`.
    Client(usize),
}

impl std::fmt::Display for UnlearnRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnlearnRequest::Class(c) => write!(f, "class {c}"),
            UnlearnRequest::Client(i) => write!(f, "client {i}"),
        }
    }
}

// Manual impls: the vendored serde derive handles only fieldless enums,
// and these variants carry their target index. A request is persisted in
// the durable unlearning-request journal (`qd-core`), so the encoding —
// `{"kind": "class"|"client", "target": N}` — is part of the journal's
// on-disk format.
impl serde::Serialize for UnlearnRequest {
    fn to_value(&self) -> serde::Value {
        let (kind, target) = match self {
            UnlearnRequest::Class(c) => ("class", *c),
            UnlearnRequest::Client(i) => ("client", *i),
        };
        serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("target".to_string(), serde::Serialize::to_value(&target)),
        ])
    }
}

impl serde::Deserialize for UnlearnRequest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let kind: String = serde::Deserialize::from_value(v.field("UnlearnRequest", "kind")?)?;
        let target: usize = serde::Deserialize::from_value(v.field("UnlearnRequest", "target")?)?;
        match kind.as_str() {
            "class" => Ok(UnlearnRequest::Class(target)),
            "client" => Ok(UnlearnRequest::Client(target)),
            other => Err(serde::DeError::new(format!(
                "unknown UnlearnRequest kind {other:?}"
            ))),
        }
    }
}

impl UnlearnRequest {
    /// Whether two requests may share one ascent pass: they name the
    /// same forget set (same class, or same client). Coalescing a
    /// request with a compatible one is free — the merged batch runs
    /// exactly the work of either member alone.
    pub fn coalesces_with(self, other: UnlearnRequest) -> bool {
        self == other
    }
}

/// The canonical union of the forget sets named by a group of requests.
///
/// `ForgetSet` is the algebra a coalescing scheduler reasons with: it is
/// a join-semilattice under [`ForgetSet::merge`] (set union), so merging
/// is **commutative**, **associative**, and **idempotent**, with
/// [`ForgetSet::empty`] as the identity. Any order of arrival, any
/// grouping into batches, and any duplication of requests therefore
/// induces the same terminal forgotten state — the property that makes
/// batched serving safe to reorder (`crates/serve`) and the request
/// journal safe to replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForgetSet {
    classes: BTreeSet<usize>,
    clients: BTreeSet<usize>,
}

impl ForgetSet {
    /// The identity element: nothing to forget.
    pub fn empty() -> ForgetSet {
        ForgetSet::default()
    }

    /// The forget set of a single request.
    pub fn of(request: UnlearnRequest) -> ForgetSet {
        let mut set = ForgetSet::empty();
        set.insert(request);
        set
    }

    /// The forget set of a whole batch (fold of [`ForgetSet::insert`]).
    pub fn of_all(requests: impl IntoIterator<Item = UnlearnRequest>) -> ForgetSet {
        let mut set = ForgetSet::empty();
        for r in requests {
            set.insert(r);
        }
        set
    }

    /// Adds one request's forget set (idempotent).
    pub fn insert(&mut self, request: UnlearnRequest) {
        match request {
            UnlearnRequest::Class(c) => {
                self.classes.insert(c);
            }
            UnlearnRequest::Client(i) => {
                self.clients.insert(i);
            }
        }
    }

    /// Set union — the join of the semilattice.
    pub fn merge(&self, other: &ForgetSet) -> ForgetSet {
        ForgetSet {
            classes: self.classes.union(&other.classes).copied().collect(),
            clients: self.clients.union(&other.clients).copied().collect(),
        }
    }

    /// Whether `request`'s forget set is already covered.
    pub fn contains(&self, request: UnlearnRequest) -> bool {
        match request {
            UnlearnRequest::Class(c) => self.classes.contains(&c),
            UnlearnRequest::Client(i) => self.clients.contains(&i),
        }
    }

    /// The distinct requests of this set in canonical order: classes
    /// ascending, then clients ascending. Deterministic, so schedules
    /// built from a `ForgetSet` replay identically.
    pub fn requests(&self) -> Vec<UnlearnRequest> {
        self.classes
            .iter()
            .map(|&c| UnlearnRequest::Class(c))
            .chain(self.clients.iter().map(|&i| UnlearnRequest::Client(i)))
            .collect()
    }

    /// Number of distinct forget targets.
    pub fn len(&self) -> usize {
        self.classes.len() + self.clients.len()
    }

    /// Whether the set is the identity element.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.clients.is_empty()
    }
}

/// Per-client view of the forget dataset `D_f`: entry `i` is the part of
/// `D_f` held by client `i` (`None` when the client holds none, excluding
/// it from unlearning rounds).
pub fn forget_override(fed: &Federation, request: UnlearnRequest) -> Vec<Option<Dataset>> {
    (0..fed.n_clients())
        .map(|i| match request {
            UnlearnRequest::Class(c) => {
                let f = fed.client_data(i).only_class(c);
                (!f.is_empty()).then_some(f)
            }
            UnlearnRequest::Client(target) => {
                (i == target && !fed.client_data(i).is_empty()).then(|| fed.client_data(i).clone())
            }
        })
        .collect()
}

/// Per-client view of the retain dataset `D \ D_f` (for recovery and
/// retraining).
pub fn retain_override(fed: &Federation, request: UnlearnRequest) -> Vec<Option<Dataset>> {
    (0..fed.n_clients())
        .map(|i| match request {
            UnlearnRequest::Class(c) => {
                let r = fed.client_data(i).without_class(c);
                (!r.is_empty()).then_some(r)
            }
            UnlearnRequest::Client(target) => {
                (i != target && !fed.client_data(i).is_empty()).then(|| fed.client_data(i).clone())
            }
        })
        .collect()
}

/// The evaluation F-Set and R-Set for a request.
///
/// * Class-level: the *test* samples of the target class vs the rest
///   (class-wise testing accuracy, Table 2).
/// * Client-level: the target client's training data vs the union of the
///   remaining clients' training data (Table 4).
pub fn fr_eval_sets(
    fed: &Federation,
    request: UnlearnRequest,
    test: &Dataset,
) -> (Dataset, Dataset) {
    match request {
        UnlearnRequest::Class(c) => (test.only_class(c), test.without_class(c)),
        UnlearnRequest::Client(target) => {
            let f = fed.client_data(target).clone();
            let mut r = f.empty_like();
            for i in 0..fed.n_clients() {
                if i != target {
                    r.extend(fed.client_data(i));
                }
            }
            (f, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_nn::{Mlp, Module};
    use qd_tensor::rng::Rng;
    use std::sync::Arc;

    fn federation(n_clients: usize) -> (Federation, Dataset, Rng) {
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(120, &mut rng);
        let parts = partition_iid(data.len(), n_clients, &mut rng);
        let clients = parts.iter().map(|p| data.subset(p)).collect();
        let test = SyntheticDataset::Digits.generate(60, &mut rng);
        (Federation::new(model, clients, &mut rng), test, rng)
    }

    #[test]
    fn class_forget_override_collects_only_target_class() {
        let (fed, _, _) = federation(3);
        let f = forget_override(&fed, UnlearnRequest::Class(4));
        for (i, part) in f.iter().enumerate() {
            if let Some(d) = part {
                assert!(d.labels().iter().all(|&y| y == 4));
                assert_eq!(d.len(), fed.client_data(i).indices_of_class(4).len());
            }
        }
    }

    #[test]
    fn class_retain_override_excludes_target_class() {
        let (fed, _, _) = federation(3);
        let r = retain_override(&fed, UnlearnRequest::Class(4));
        for part in r.iter().flatten() {
            assert!(part.labels().iter().all(|&y| y != 4));
        }
    }

    #[test]
    fn client_overrides_select_single_client() {
        let (fed, _, _) = federation(3);
        let f = forget_override(&fed, UnlearnRequest::Client(1));
        assert!(f[0].is_none() && f[2].is_none());
        assert_eq!(f[1].as_ref().unwrap().len(), fed.client_data(1).len());
        let r = retain_override(&fed, UnlearnRequest::Client(1));
        assert!(r[1].is_none());
        assert!(r[0].is_some() && r[2].is_some());
    }

    #[test]
    fn fr_eval_sets_partition_for_class_requests() {
        let (fed, test, _) = federation(2);
        let (f, r) = fr_eval_sets(&fed, UnlearnRequest::Class(0), &test);
        assert_eq!(f.len() + r.len(), test.len());
        assert!(f.labels().iter().all(|&y| y == 0));
    }

    #[test]
    fn fr_eval_sets_for_client_requests_use_training_data() {
        let (fed, test, _) = federation(3);
        let (f, r) = fr_eval_sets(&fed, UnlearnRequest::Client(2), &test);
        assert_eq!(f.len(), fed.client_data(2).len());
        let total: usize = (0..3).map(|i| fed.client_data(i).len()).sum();
        assert_eq!(r.len(), total - f.len());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(UnlearnRequest::Class(9).to_string(), "class 9");
        assert_eq!(UnlearnRequest::Client(3).to_string(), "client 3");
    }

    #[test]
    fn coalescing_requires_an_identical_forget_set() {
        let class3 = UnlearnRequest::Class(3);
        assert!(class3.coalesces_with(UnlearnRequest::Class(3)));
        assert!(!class3.coalesces_with(UnlearnRequest::Class(4)));
        // A class index and a client index name different forget sets
        // even when the numbers collide.
        assert!(!class3.coalesces_with(UnlearnRequest::Client(3)));
        assert!(UnlearnRequest::Client(1).coalesces_with(UnlearnRequest::Client(1)));
    }

    #[test]
    fn merge_is_commutative_associative_idempotent_with_identity() {
        let a = ForgetSet::of_all([UnlearnRequest::Class(1), UnlearnRequest::Client(0)]);
        let b = ForgetSet::of_all([UnlearnRequest::Class(1), UnlearnRequest::Class(5)]);
        let c = ForgetSet::of(UnlearnRequest::Client(2));
        assert_eq!(a.merge(&b), b.merge(&a), "commutative");
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "associative");
        assert_eq!(a.merge(&a), a, "idempotent");
        assert_eq!(a.merge(&ForgetSet::empty()), a, "identity");
        assert_eq!(ForgetSet::empty().len(), 0);
        assert!(ForgetSet::empty().is_empty());
    }

    #[test]
    fn requests_come_back_in_canonical_order() {
        let set = ForgetSet::of_all([
            UnlearnRequest::Client(7),
            UnlearnRequest::Class(9),
            UnlearnRequest::Class(2),
            UnlearnRequest::Client(1),
            UnlearnRequest::Class(9),
        ]);
        assert_eq!(
            set.requests(),
            vec![
                UnlearnRequest::Class(2),
                UnlearnRequest::Class(9),
                UnlearnRequest::Client(1),
                UnlearnRequest::Client(7),
            ]
        );
        assert_eq!(set.len(), 4, "duplicates collapse");
        assert!(set.contains(UnlearnRequest::Class(9)));
        assert!(!set.contains(UnlearnRequest::Client(9)));
    }
}

#[cfg(test)]
mod merge_props {
    use super::*;
    use proptest::prelude::*;

    /// Decodes a generated `(kind, target)` pair into a request.
    fn request(kind: u8, target: usize) -> UnlearnRequest {
        if kind.is_multiple_of(2) {
            UnlearnRequest::Class(target)
        } else {
            UnlearnRequest::Client(target)
        }
    }

    fn batch(kinds: &[u8], targets: &[usize]) -> Vec<UnlearnRequest> {
        kinds
            .iter()
            .zip(targets)
            .map(|(&k, &t)| request(k, t))
            .collect()
    }

    /// Deterministic Fisher–Yates driven by the generated swap words.
    fn permuted(requests: &[UnlearnRequest], swaps: &[u64]) -> Vec<UnlearnRequest> {
        let mut out = requests.to_vec();
        for (i, &s) in swaps.iter().enumerate().take(out.len()) {
            let j = (s % (i as u64 + 1)) as usize;
            out.swap(i, j);
        }
        out
    }

    /// The journal terminal state every served request reaches, keyed by
    /// its canonical identity. Coalesced execution serves one merged
    /// batch; sequential execution serves the requests one at a time.
    /// Both must leave every member fully served (RECOVERED) with the
    /// same terminal forgotten state.
    fn terminal_states(
        requests: &[UnlearnRequest],
        coalesced: bool,
    ) -> Vec<(UnlearnRequest, &'static str)> {
        let forget = if coalesced {
            ForgetSet::of_all(requests.iter().copied())
        } else {
            let mut acc = ForgetSet::empty();
            for &r in requests {
                acc = acc.merge(&ForgetSet::of(r));
            }
            acc
        };
        forget
            .requests()
            .into_iter()
            .map(|r| (r, "RECOVERED"))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn merge_is_order_insensitive(
            kinds in collection::vec(0u8..2, 0..24usize),
            targets in collection::vec(0usize..6, 0..24usize),
            swaps in collection::vec(0u64..u64::MAX, 24usize),
        ) {
            let n = kinds.len().min(targets.len());
            let requests = batch(&kinds[..n], &targets[..n]);
            let shuffled = permuted(&requests, &swaps);
            prop_assert_eq!(
                ForgetSet::of_all(requests.iter().copied()),
                ForgetSet::of_all(shuffled.iter().copied()),
                "any arrival order induces the same forget set"
            );
        }

        #[test]
        fn coalesced_and_sequential_execution_agree_on_terminal_states(
            kinds in collection::vec(0u8..2, 1..24usize),
            targets in collection::vec(0usize..6, 1..24usize),
            swaps in collection::vec(0u64..u64::MAX, 24usize),
        ) {
            let n = kinds.len().min(targets.len());
            let requests = batch(&kinds[..n], &targets[..n]);
            // Coalesced execution of the whole batch vs serving each
            // request alone, in a permuted order.
            let coalesced = terminal_states(&requests, true);
            let sequential = terminal_states(&permuted(&requests, &swaps), false);
            prop_assert_eq!(coalesced, sequential);
        }

        #[test]
        fn merge_laws_hold_for_random_sets(
            kinds in collection::vec(0u8..2, 0..12usize),
            targets in collection::vec(0usize..5, 0..12usize),
            split in 0usize..12,
        ) {
            let n = kinds.len().min(targets.len());
            let requests = batch(&kinds[..n], &targets[..n]);
            let cut = split.min(n);
            let a = ForgetSet::of_all(requests[..cut].iter().copied());
            let b = ForgetSet::of_all(requests[cut..].iter().copied());
            prop_assert_eq!(a.merge(&b), b.merge(&a));
            prop_assert_eq!(a.merge(&a), a.clone());
            prop_assert_eq!(a.merge(&ForgetSet::empty()), a);
        }
    }
}
