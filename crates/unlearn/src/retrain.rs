//! Retrain-Or: the retraining-from-scratch oracle.

use crate::{
    retain_override, Capabilities, Efficiency, MethodOutcome, UnlearnRequest, UnlearningMethod,
};
use qd_fed::{sgd_trainers, Federation, Phase, PhaseStats};
use qd_tensor::rng::Rng;

/// The retraining oracle: reinitializes the model and runs full FL
/// training on `D \ D_f`.
///
/// Perfect unlearning by construction and the accuracy yardstick for all
/// other methods — but its cost is a complete training run, which is what
/// every other method tries to avoid (Table 2 reports a `463x` gap to
/// QuickDrop).
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::{RetrainOracle, UnlearningMethod};
///
/// let method = RetrainOracle::new(Phase::training(30, 50, 256, 0.01));
/// assert!(method.capabilities().class_level);
/// assert!(method.capabilities().client_level);
/// ```
#[derive(Debug, Clone)]
pub struct RetrainOracle {
    train_phase: Phase,
}

impl RetrainOracle {
    /// Creates the oracle with the FL training schedule used for the
    /// from-scratch run.
    pub fn new(train_phase: Phase) -> Self {
        RetrainOracle { train_phase }
    }
}

impl UnlearningMethod for RetrainOracle {
    fn name(&self) -> &'static str {
        "Retrain-Or"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: true,
            client_level: true,
            relearn: true,
            storage_efficient: true,
            computation: Efficiency::VeryLow,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        let retain = retain_override(fed, request);
        // From scratch: fresh initialization.
        fed.set_global(fed.model().init(rng));
        let mut trainers = sgd_trainers(fed.model().clone(), fed.n_clients());
        let unlearn = fed.run_phase(&mut trainers, Some(&retain), &self.train_phase, rng);
        MethodOutcome {
            unlearn,
            recovery: PhaseStats::default(),
            post_unlearn_params: fed.global().to_vec(),
            guard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_eval::split_accuracy;
    use qd_nn::{Mlp, Module};
    use std::sync::Arc;

    #[test]
    fn oracle_forgets_class_and_keeps_rest() {
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let test = SyntheticDataset::Digits.generate(200, &mut rng);
        let parts = partition_iid(data.len(), 4, &mut rng);
        let clients = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);

        let mut oracle = RetrainOracle::new(Phase::training(6, 8, 32, 0.1));
        let outcome = oracle.unlearn(&mut fed, UnlearnRequest::Class(9), &mut rng);
        assert!(outcome.unlearn.rounds == 6);

        let (f, r) = crate::fr_eval_sets(&fed, UnlearnRequest::Class(9), &test);
        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa < 0.15, "forgotten class accuracy {fa} should collapse");
        assert!(ra > 0.5, "retained accuracy {ra} should stay high");
    }
}
