//! The [`UnlearningMethod`] trait, capability flags (Table 1), and shared
//! helpers.

use crate::{forget_override, UnlearnRequest};
use qd_fed::{sgd_trainers, Federation, Phase, PhaseStats};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;

/// Qualitative efficiency rating used in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Efficiency {
    /// Very low (e.g. full retraining).
    VeryLow,
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl std::fmt::Display for Efficiency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Efficiency::VeryLow => "very low",
            Efficiency::Low => "low",
            Efficiency::Medium => "medium",
            Efficiency::High => "high",
        };
        f.write_str(s)
    }
}

/// What a method supports and how it rates — the rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Supports class-level unlearning.
    pub class_level: bool,
    /// Supports client-level unlearning.
    pub client_level: bool,
    /// Supports relearning previously erased knowledge.
    pub relearn: bool,
    /// Storage efficiency (does it avoid storing per-round state?).
    pub storage_efficient: bool,
    /// Computation efficiency class.
    pub computation: Efficiency,
}

/// Everything measured while serving one unlearning request.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Cost of the unlearning stage.
    pub unlearn: PhaseStats,
    /// Cost of the recovery stage (zero for integrated methods like
    /// retraining).
    pub recovery: PhaseStats,
    /// Global parameters right after unlearning, before recovery (for
    /// stage-wise accuracy reporting as in Table 2).
    pub post_unlearn_params: Vec<Tensor>,
    /// Divergence-guard bookkeeping, `Some` when the request was served
    /// through a [`crate::Guarded`] wrapper (or another guarded engine);
    /// `None` for unguarded serving.
    pub guard: Option<crate::GuardStats>,
}

impl MethodOutcome {
    /// Total cost of unlearning + recovery.
    pub fn total(&self) -> PhaseStats {
        let mut t = self.unlearn;
        t.merge(&self.recovery);
        t
    }
}

/// A federated unlearning algorithm.
///
/// Implementations mutate the federation's global parameters in place;
/// accuracy evaluation is left to the caller (see `qd-eval`), keeping
/// methods free of any evaluation cost in their timing.
pub trait UnlearningMethod {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Capability flags for Table 1.
    fn capabilities(&self) -> Capabilities;

    /// Serves one unlearning request, updating `fed`'s global model.
    ///
    /// # Panics
    ///
    /// Implementations panic when given a request kind they do not
    /// support (see [`Capabilities`]).
    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome;

    /// Restores previously erased knowledge, or `None` if unsupported
    /// (FU-MP's pruning is irreversible).
    ///
    /// The default relearns with SGD on the original forget data, as the
    /// paper does for every baseline; QuickDrop overrides this to use its
    /// synthetic data.
    fn relearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        phase: &Phase,
        rng: &mut Rng,
    ) -> Option<PhaseStats> {
        Some(relearn_with_original(fed, request, phase, rng))
    }
}

/// Cross-entropy gradients of `model` at `params` on one batch (shared by
/// methods that run local steps outside the federation's round machinery,
/// e.g. PGA's projected ascent).
pub(crate) fn batch_grads(
    model: &dyn qd_nn::Module,
    params: &[Tensor],
    x: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Vec<Tensor> {
    let mut tape = qd_autograd::Tape::new();
    let p: Vec<_> = params.iter().map(|t| tape.leaf(t.clone())).collect();
    let xv = tape.constant(x.clone());
    let logits = model.forward(&mut tape, &p, xv);
    let loss = qd_nn::cross_entropy(&mut tape, logits, labels, classes);
    let grads = tape.grad(loss, &p);
    grads.into_iter().map(|g| tape.value(g).clone()).collect()
}

/// SGD training on the original forget data — the shared relearning
/// procedure of all baselines (Section 4.7).
pub fn relearn_with_original(
    fed: &mut Federation,
    request: UnlearnRequest,
    phase: &Phase,
    rng: &mut Rng,
) -> PhaseStats {
    let forget = forget_override(fed, request);
    let mut trainers = sgd_trainers(fed.model().clone(), fed.n_clients());
    fed.run_phase(&mut trainers, Some(&forget), phase, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ordering_matches_semantics() {
        assert!(Efficiency::VeryLow < Efficiency::Low);
        assert!(Efficiency::Medium < Efficiency::High);
        assert_eq!(Efficiency::High.to_string(), "high");
    }

    #[test]
    fn outcome_total_merges_stages() {
        use std::time::Duration;
        let outcome = MethodOutcome {
            unlearn: PhaseStats {
                rounds: 1,
                samples_processed: 10,
                data_size: 100,
                wall: Duration::from_secs(1),
                download_scalars: 5,
                upload_scalars: 5,
                ..PhaseStats::default()
            },
            recovery: PhaseStats {
                rounds: 2,
                samples_processed: 20,
                data_size: 900,
                wall: Duration::from_secs(2),
                download_scalars: 7,
                upload_scalars: 7,
                ..PhaseStats::default()
            },
            post_unlearn_params: Vec::new(),
            guard: None,
        };
        let t = outcome.total();
        assert_eq!(t.rounds, 3);
        assert_eq!(t.samples_processed, 30);
        assert_eq!(t.data_size, 900);
        assert_eq!(t.wall, Duration::from_secs(3));
        assert_eq!(t.communication_scalars(), 24);
    }
}
