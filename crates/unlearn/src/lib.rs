//! Federated unlearning: the method abstraction and the five baselines
//! QuickDrop is evaluated against (Section 2.3 / Table 1 of the paper).
//!
//! | method | idea | class-level | client-level | relearn |
//! |---|---|---|---|---|
//! | [`RetrainOracle`] | retrain from scratch on `D \ D_f` | ✓ | ✓ | ✓ |
//! | [`SgaOriginal`] | gradient ascent on `D_f`, recovery on `D \ D_f` | ✓ | ✓ | ✓ |
//! | [`FedEraser`] | replay stored round updates, calibrated on retain data | ✓ | ✓ | ✓ |
//! | [`FuMp`] | prune the channels most discriminative of the target class | ✓ | ✗ | ✗ |
//! | [`S2U`] | scale down the forgetting client's updates, scale up the rest | ✗ | ✓ | ✓ |
//!
//! QuickDrop itself implements the same [`UnlearningMethod`] trait in
//! `qd-core`, so every experiment harness treats all six uniformly.
//!
//! # Examples
//!
//! Run the SGA baseline on a tiny federation:
//!
//! ```
//! use std::sync::Arc;
//! use qd_data::{partition_iid, SyntheticDataset};
//! use qd_fed::{Federation, Phase};
//! use qd_nn::{Mlp, Module};
//! use qd_tensor::rng::Rng;
//! use qd_unlearn::{SgaOriginal, UnlearnRequest, UnlearningMethod};
//!
//! let mut rng = Rng::seed_from(0);
//! let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
//! let data = SyntheticDataset::Digits.generate(100, &mut rng);
//! let parts = partition_iid(data.len(), 2, &mut rng);
//! let clients = parts.iter().map(|p| data.subset(p)).collect();
//! let mut fed = Federation::new(model, clients, &mut rng);
//! let mut method = SgaOriginal::new(
//!     Phase::unlearning(1, 2, 16, 0.02),
//!     Phase::training(1, 2, 16, 0.01),
//! );
//! let outcome = method.unlearn(&mut fed, UnlearnRequest::Class(3), &mut rng);
//! assert_eq!(outcome.unlearn.rounds, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod federaser;
mod fump;
mod guard;
mod method;
mod pga;
mod request;
mod retrain;
mod s2u;
mod sga;

pub use federaser::FedEraser;
pub use fump::FuMp;
pub use guard::{
    check_attempt, probe_sample, GuardPolicy, GuardStats, GuardViolation, GuardableMethod, Guarded,
    UnlearnError, DEFAULT_DRIFT_BUDGET,
};
pub use method::{
    relearn_with_original, Capabilities, Efficiency, MethodOutcome, UnlearningMethod,
};
pub use pga::PgaHalimi;
pub use request::{forget_override, fr_eval_sets, retain_override, ForgetSet, UnlearnRequest};
pub use retrain::RetrainOracle;
pub use s2u::S2U;
pub use sga::SgaOriginal;
