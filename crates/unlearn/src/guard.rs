//! Divergence guards for gradient-ascent unlearning.
//!
//! Plain SGA has a first-class failure mode: one over-aggressive ascent
//! step (a hostile forget-data holder, a misconfigured LR) blows the
//! model past what recovery on the retain set can reverse. The guard
//! wraps any [`UnlearningMethod`] with three cheap post-attempt checks —
//! a non-finite scan, a **drift budget** (max relative L2 displacement of
//! the ascent result from the pre-unlearn model, the same ball geometry
//! PGA projects onto), and a **retain probe** (loss on a small retain
//! sample must stay under a threshold) — and on violation rolls the
//! federation back to the pre-unlearn snapshot and retries with a halved
//! ascent LR. Bounded backoff: after the configured retries the guard
//! surfaces a typed [`UnlearnError::Diverged`] with the model restored,
//! never a poisoned one.

use crate::{retain_override, Capabilities, MethodOutcome, UnlearnRequest, UnlearningMethod};
use qd_data::Dataset;
use qd_fed::Federation;
use qd_nn::{params_have_non_finite, relative_drift, Module};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;

/// Default drift budget: the ascent stage may displace the model by at
/// most half its own norm. Fault-free SGA ascent on a trained model
/// lands well under this (relative drift ~0.1–0.3 at the paper's LRs,
/// comfortably inside PGA's published projection radii of 0.2–0.5),
/// while a spiked ascent overshoots it by orders of magnitude — so the
/// default separates the two regimes without tuning.
pub const DEFAULT_DRIFT_BUDGET: f32 = 0.5;

/// Configuration of a divergence guard. All checks are opt-out: a zero
/// `drift_budget` or `retain_probe` disables that check (the non-finite
/// scan always runs — no model with NaN parameters is ever acceptable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Max relative L2 displacement of the post-ascent model from the
    /// pre-unlearn model (`0.0` disables the check).
    pub drift_budget: f32,
    /// Max mean cross-entropy loss on the retain probe after recovery
    /// (`0.0` disables the check).
    pub retain_probe: f32,
    /// Rollback-and-halve retries after the first failed attempt before
    /// the guard gives up with [`UnlearnError::Diverged`].
    pub ascent_retries: u32,
    /// Retain samples drawn (across clients) for the probe.
    pub probe_samples: usize,
    /// Initial ascent-LR multiplier the first attempt starts from
    /// (each in-guard retry still halves it further). `1.0` — the
    /// default — is the configured LR untouched; a failure-isolation
    /// retry ladder hands in progressively smaller scales to re-run a
    /// diverged unit more gently.
    pub ascent_lr_scale: f32,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            drift_budget: DEFAULT_DRIFT_BUDGET,
            retain_probe: 0.0,
            ascent_retries: 3,
            probe_samples: 64,
            ascent_lr_scale: 1.0,
        }
    }
}

impl GuardPolicy {
    /// Checks the policy for nonsensical values, returning a message
    /// suitable for a CLI usage error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.drift_budget.is_finite() || self.drift_budget < 0.0 {
            return Err(format!(
                "drift budget must be finite and >= 0 (0 disables), got {}",
                self.drift_budget
            ));
        }
        if !self.retain_probe.is_finite() || self.retain_probe < 0.0 {
            return Err(format!(
                "retain-probe threshold must be finite and >= 0 (0 disables), got {}",
                self.retain_probe
            ));
        }
        if self.ascent_retries > 16 {
            return Err(format!(
                "ascent retries capped at 16 (each halves the LR; 16 already \
                 shrinks it 65536x), got {}",
                self.ascent_retries
            ));
        }
        if self.probe_samples == 0 {
            return Err("probe_samples must be >= 1".to_string());
        }
        if !self.ascent_lr_scale.is_finite()
            || self.ascent_lr_scale <= 0.0
            || self.ascent_lr_scale > 1.0
        {
            return Err(format!(
                "ascent LR scale must be in (0, 1], got {}",
                self.ascent_lr_scale
            ));
        }
        Ok(())
    }
}

/// Everything a guard decided while serving one request. Flows into
/// [`MethodOutcome::guard`] and, when a request journal is in use, is
/// persisted with the request's UNLEARNED record.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct GuardStats {
    /// Guarded ascent attempts executed (1 for a clean first pass).
    pub steps: u32,
    /// Rollbacks to the pre-unlearn snapshot.
    pub rollbacks: u32,
    /// Ascent-LR halvings applied (one per rollback).
    pub lr_halvings: u32,
    /// Relative L2 drift of the accepted ascent result (the last
    /// measured drift when the guard gave up).
    pub final_drift: f32,
}

impl GuardStats {
    /// The internal-consistency contract every recorded guard outcome
    /// keeps: at least one attempt ran, rollbacks never outnumber
    /// attempts, LR halvings never outnumber rollbacks (one per
    /// rollback), and the final drift is a finite non-negative ratio.
    /// The chaos harness's guard-monotonicity invariant checks this on
    /// every journal record that carries guard stats.
    pub fn is_consistent(&self) -> bool {
        self.steps >= 1
            && self.rollbacks <= self.steps
            && self.lr_halvings <= self.rollbacks
            && self.final_drift.is_finite()
            && self.final_drift >= 0.0
    }
}

/// Why a guarded attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardViolation {
    /// The model contains NaN or infinite parameters.
    NonFinite,
    /// Relative drift of the ascent result exceeded the budget.
    DriftExceeded {
        /// Measured relative drift.
        drift: f32,
        /// The configured budget it exceeded.
        budget: f32,
    },
    /// Mean retain-probe loss exceeded the threshold.
    ProbeExceeded {
        /// Measured mean loss on the probe.
        loss: f32,
        /// The configured threshold it exceeded.
        limit: f32,
    },
}

impl std::fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardViolation::NonFinite => f.write_str("non-finite parameters"),
            GuardViolation::DriftExceeded { drift, budget } => {
                write!(f, "drift {drift:.3} exceeds budget {budget:.3}")
            }
            GuardViolation::ProbeExceeded { loss, limit } => {
                write!(f, "retain-probe loss {loss:.3} exceeds limit {limit:.3}")
            }
        }
    }
}

/// Typed failure of a guarded unlearning attempt. The federation is left
/// at the pre-unlearn model — never at a diverged one.
#[derive(Debug, Clone, PartialEq)]
pub enum UnlearnError {
    /// Every attempt violated the guard, backoff included.
    Diverged {
        /// The last violation observed.
        violation: GuardViolation,
        /// Guard bookkeeping across all attempts.
        stats: GuardStats,
    },
}

impl std::fmt::Display for UnlearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnlearnError::Diverged { violation, stats } => write!(
                f,
                "unlearning diverged after {} attempt(s) ({}); model rolled back",
                stats.steps, violation
            ),
        }
    }
}

impl std::error::Error for UnlearnError {}

/// Mean cross-entropy loss of `model(params)` over `probe`.
fn mean_probe_loss(model: &dyn Module, params: &[Tensor], probe: &Dataset) -> f32 {
    let losses = qd_eval::sample_losses(model, params, probe);
    losses.iter().sum::<f32>() / losses.len() as f32
}

/// Draws up to `cap` retain samples, spread across the per-client retain
/// views in client order. `None` when no retain data exists (stub
/// federations): the probe check is then skipped.
pub fn probe_sample(retain: &[Option<Dataset>], cap: usize) -> Option<Dataset> {
    let mut probe: Option<Dataset> = None;
    let mut left = cap;
    for d in retain.iter().flatten() {
        if left == 0 {
            break;
        }
        let take: Vec<usize> = (0..d.len().min(left)).collect();
        if take.is_empty() {
            continue;
        }
        left -= take.len();
        let part = d.subset(&take);
        match &mut probe {
            Some(acc) => acc.extend(&part),
            None => probe = Some(part),
        }
    }
    probe
}

/// Applies the guard's three checks to one finished attempt: `ascent` is
/// the model right after the ascent stage (drift is measured here, where
/// divergence happens), `recovered` the model after recovery (scanned
/// for non-finite values and probed on retain data).
///
/// Returns the measured relative drift of the accepted attempt.
///
/// # Errors
///
/// Returns the first [`GuardViolation`] encountered.
pub fn check_attempt(
    policy: &GuardPolicy,
    model: &dyn Module,
    reference: &[Tensor],
    ascent: &[Tensor],
    recovered: &[Tensor],
    probe: Option<&Dataset>,
) -> Result<f32, GuardViolation> {
    if params_have_non_finite(ascent) || params_have_non_finite(recovered) {
        return Err(GuardViolation::NonFinite);
    }
    let drift = relative_drift(ascent, reference);
    if policy.drift_budget > 0.0 && drift > policy.drift_budget {
        return Err(GuardViolation::DriftExceeded {
            drift,
            budget: policy.drift_budget,
        });
    }
    if policy.retain_probe > 0.0 {
        if let Some(probe) = probe.filter(|d| !d.is_empty()) {
            let loss = mean_probe_loss(model, recovered, probe);
            // A NaN loss counts as a violation.
            if loss.is_nan() || loss > policy.retain_probe {
                return Err(GuardViolation::ProbeExceeded {
                    loss,
                    limit: policy.retain_probe,
                });
            }
        }
    }
    Ok(drift)
}

/// A method whose ascent aggressiveness the guard can dial down between
/// attempts.
pub trait GuardableMethod: UnlearningMethod {
    /// Multiplies the ascent learning rate by `factor` (the guard passes
    /// `0.5` after each rollback). The change persists: a guard instance
    /// that had to back off keeps serving at the LR it found safe.
    fn scale_ascent_lr(&mut self, factor: f32);
}

/// Divergence-safe wrapper around an unlearning method.
///
/// Snapshots the global model and RNG before the inner method runs,
/// checks the result against the [`GuardPolicy`], and on violation rolls
/// both back and retries at half the ascent LR. See the module docs for
/// the failure model.
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::{GuardPolicy, Guarded, SgaOriginal, UnlearningMethod};
///
/// let sga = SgaOriginal::new(
///     Phase::unlearning(2, 50, 256, 0.02),
///     Phase::training(2, 50, 256, 0.01),
/// );
/// let guarded = Guarded::new(sga, GuardPolicy::default());
/// assert_eq!(guarded.name(), "SGA-Or"); // transparent in tables
/// ```
#[derive(Debug, Clone)]
pub struct Guarded<M> {
    inner: M,
    policy: GuardPolicy,
}

impl<M: GuardableMethod> Guarded<M> {
    /// Wraps `inner` with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails [`GuardPolicy::validate`].
    pub fn new(inner: M, policy: GuardPolicy) -> Self {
        if let Err(msg) = policy.validate() {
            // qd-lint: allow(panic-safety) -- policy validation failure is a
            // documented caller bug (`# Panics`), not a runtime condition
            panic!("invalid guard policy: {msg}");
        }
        Guarded { inner, policy }
    }

    /// The wrapped method.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The active guard policy.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Serves one request under the guard.
    ///
    /// On success the returned outcome carries the guard's bookkeeping in
    /// [`MethodOutcome::guard`]. On divergence the federation holds the
    /// pre-unlearn model and the RNG stream is restored to its
    /// pre-request state, so the caller can retry, reroute, or refuse
    /// without inheriting a poisoned deployment.
    ///
    /// # Errors
    ///
    /// [`UnlearnError::Diverged`] when every attempt (1 + configured
    /// retries) violated the guard.
    pub fn try_unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> Result<MethodOutcome, UnlearnError> {
        let reference = fed.global().to_vec();
        let rng_mark = rng.state();
        let probe = probe_sample(&retain_override(fed, request), self.policy.probe_samples);
        let mut stats = GuardStats::default();
        let mut last_violation = GuardViolation::NonFinite;
        for attempt in 0..=self.policy.ascent_retries {
            let mut outcome = self.inner.unlearn(fed, request, rng);
            stats.steps += 1;
            match check_attempt(
                &self.policy,
                fed.model().as_ref(),
                &reference,
                &outcome.post_unlearn_params,
                fed.global(),
                probe.as_ref(),
            ) {
                Ok(drift) => {
                    stats.final_drift = drift;
                    outcome.guard = Some(stats);
                    return Ok(outcome);
                }
                Err(violation) => {
                    stats.final_drift = relative_drift(&outcome.post_unlearn_params, &reference);
                    last_violation = violation;
                }
            }
            // Roll back model and RNG; retry deterministically at half
            // the ascent LR (skipped once the budget is exhausted).
            fed.set_global(reference.clone());
            *rng = Rng::from_state(&rng_mark);
            stats.rollbacks += 1;
            if attempt < self.policy.ascent_retries {
                self.inner.scale_ascent_lr(0.5);
                stats.lr_halvings += 1;
            }
        }
        Err(UnlearnError::Diverged {
            violation: last_violation,
            stats,
        })
    }
}

impl<M: GuardableMethod> UnlearningMethod for Guarded<M> {
    /// Delegates to the inner method: the guard is transparent in
    /// experiment tables, its work shows up in [`MethodOutcome::guard`].
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    /// Guarded serving through the common trait.
    ///
    /// # Panics
    ///
    /// Panics on [`UnlearnError::Diverged`] — callers that want the typed
    /// error (and the rolled-back model) use [`Guarded::try_unlearn`].
    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        match self.try_unlearn(fed, request, rng) {
            Ok(outcome) => outcome,
            // qd-lint: allow(panic-safety) -- trait method has no error
            // channel; the fallible entry point is try_unlearn
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SgaOriginal;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_fed::{sgd_trainers, Federation, Phase};
    use qd_nn::Mlp;
    use std::sync::Arc;

    fn trained_federation(seed: u64) -> (Federation, Rng) {
        let mut rng = Rng::seed_from(seed);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let parts = partition_iid(data.len(), 4, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        let mut trainers = sgd_trainers(model, 4);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(8, 10, 32, 0.1),
            &mut rng,
        );
        (fed, rng)
    }

    #[test]
    fn default_policy_validates() {
        GuardPolicy::default().validate().expect("default is sane");
        let bad = GuardPolicy {
            drift_budget: f32::NAN,
            ..GuardPolicy::default()
        };
        assert!(bad.validate().is_err());
        let bad = GuardPolicy {
            ascent_retries: 17,
            ..GuardPolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn clean_run_passes_with_zero_rollbacks() {
        let (mut fed, mut rng) = trained_federation(1);
        let sga = SgaOriginal::new(
            Phase::unlearning(1, 6, 32, 0.05),
            Phase::training(2, 8, 32, 0.05),
        );
        let mut guarded = Guarded::new(sga, GuardPolicy::default());
        let outcome = guarded
            .try_unlearn(&mut fed, UnlearnRequest::Class(5), &mut rng)
            .expect("fault-free run stays inside the budget");
        let stats = outcome.guard.expect("guarded outcome carries stats");
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.rollbacks, 0);
        assert!(stats.final_drift > 0.0, "ascent must move the model");
        assert!(stats.final_drift <= DEFAULT_DRIFT_BUDGET);
    }

    #[test]
    fn hostile_lr_rolls_back_and_recovers_or_surfaces_typed_error() {
        let (mut fed, mut rng) = trained_federation(2);
        // 40x the sane ascent LR: the first attempts must blow the budget.
        let sga = SgaOriginal::new(
            Phase::unlearning(1, 6, 32, 2.0),
            Phase::training(2, 8, 32, 0.05),
        );
        let policy = GuardPolicy {
            ascent_retries: 8,
            ..GuardPolicy::default()
        };
        let mut guarded = Guarded::new(sga, policy);
        match guarded.try_unlearn(&mut fed, UnlearnRequest::Class(5), &mut rng) {
            Ok(outcome) => {
                let stats = outcome.guard.expect("stats attached");
                assert!(stats.rollbacks >= 1, "hostile LR must trigger a rollback");
                assert_eq!(stats.lr_halvings, stats.rollbacks);
                assert!(stats.final_drift <= policy.drift_budget);
                assert!(!qd_nn::params_have_non_finite(fed.global()));
            }
            Err(UnlearnError::Diverged { stats, .. }) => {
                panic!("8 halvings shrink 2.0 to ~0.008; should converge, got {stats:?}")
            }
        }
    }

    #[test]
    fn exhausted_backoff_restores_the_model_bit_for_bit() {
        let (mut fed, mut rng) = trained_federation(3);
        let reference = fed.global().to_vec();
        let rng_mark = rng.state();
        let sga = SgaOriginal::new(
            Phase::unlearning(1, 6, 32, 5.0),
            Phase::training(1, 2, 32, 0.05),
        );
        // No retries and an unmeetable budget: guaranteed divergence.
        let policy = GuardPolicy {
            drift_budget: 1e-6,
            ascent_retries: 0,
            ..GuardPolicy::default()
        };
        let mut guarded = Guarded::new(sga, policy);
        let err = guarded
            .try_unlearn(&mut fed, UnlearnRequest::Class(5), &mut rng)
            .expect_err("budget of 1e-6 cannot be met");
        let UnlearnError::Diverged { stats, .. } = &err;
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.lr_halvings, 0, "no retry, no halving");
        assert!(err.to_string().contains("rolled back"));
        for (a, b) in fed.global().iter().zip(&reference) {
            assert_eq!(a.data(), b.data(), "model must be restored exactly");
        }
        assert_eq!(rng.state(), rng_mark, "RNG stream must be restored");
    }

    #[test]
    fn probe_sample_spreads_across_clients_and_respects_cap() {
        let mut rng = Rng::seed_from(7);
        let a = SyntheticDataset::Digits.generate(10, &mut rng);
        let b = SyntheticDataset::Digits.generate(10, &mut rng);
        let retain = vec![Some(a), None, Some(b)];
        let probe = probe_sample(&retain, 14).expect("data exists");
        assert_eq!(probe.len(), 14); // 10 from the first client, 4 more
        assert!(probe_sample(&[None, None], 8).is_none());
    }
}
