//! SGA-Or: stochastic gradient ascent on the original forget data
//! (Algorithm 1, Wu et al. 2022).

use crate::{
    forget_override, retain_override, Capabilities, Efficiency, MethodOutcome, UnlearnRequest,
    UnlearningMethod,
};
use qd_fed::{sgd_trainers, Federation, Phase};
use qd_tensor::rng::Rng;

/// SGA on the original datasets: clients holding forget data run local
/// gradient *ascent* rounds on `D_f`, then all remaining clients run
/// ordinary descent recovery rounds on `D \ D_f`.
///
/// Faster than retraining but still touches every original sample — the
/// inefficiency QuickDrop removes by substituting synthetic data.
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::{SgaOriginal, UnlearningMethod};
///
/// let m = SgaOriginal::new(
///     Phase::unlearning(2, 50, 256, 0.02),
///     Phase::training(2, 50, 256, 0.01),
/// );
/// assert_eq!(m.name(), "SGA-Or");
/// ```
#[derive(Debug, Clone)]
pub struct SgaOriginal {
    unlearn_phase: Phase,
    recover_phase: Phase,
}

impl SgaOriginal {
    /// Creates the baseline from an ascent phase and a descent recovery
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics if the phases' directions are inconsistent with their roles.
    pub fn new(unlearn_phase: Phase, recover_phase: Phase) -> Self {
        assert_eq!(
            unlearn_phase.direction,
            qd_nn::Direction::Ascent,
            "unlearning phase must ascend"
        );
        assert_eq!(
            recover_phase.direction,
            qd_nn::Direction::Descent,
            "recovery phase must descend"
        );
        SgaOriginal {
            unlearn_phase,
            recover_phase,
        }
    }
}

impl UnlearningMethod for SgaOriginal {
    fn name(&self) -> &'static str {
        "SGA-Or"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: true,
            client_level: true,
            relearn: true,
            storage_efficient: true,
            computation: Efficiency::Medium,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        let forget = forget_override(fed, request);
        let retain = retain_override(fed, request);
        let mut trainers = sgd_trainers(fed.model().clone(), fed.n_clients());
        let unlearn = fed.run_phase(&mut trainers, Some(&forget), &self.unlearn_phase, rng);
        let post_unlearn_params = fed.global().to_vec();
        let recovery = fed.run_phase(&mut trainers, Some(&retain), &self.recover_phase, rng);
        MethodOutcome {
            unlearn,
            recovery,
            post_unlearn_params,
            guard: None,
        }
    }
}

impl crate::GuardableMethod for SgaOriginal {
    fn scale_ascent_lr(&mut self, factor: f32) {
        self.unlearn_phase.lr *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_eval::split_accuracy;
    use qd_fed::Phase;
    use qd_nn::{Mlp, Module};
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "must ascend")]
    fn rejects_descending_unlearn_phase() {
        let _ = SgaOriginal::new(Phase::training(1, 1, 1, 0.1), Phase::training(1, 1, 1, 0.1));
    }

    #[test]
    fn sga_unlearns_class_then_recovers() {
        let mut rng = Rng::seed_from(1);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let data = SyntheticDataset::Digits.generate(400, &mut rng);
        let test = SyntheticDataset::Digits.generate(200, &mut rng);
        let parts = partition_iid(data.len(), 4, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);

        // Train first so there is something to forget.
        let mut trainers = sgd_trainers(model.clone(), 4);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(10, 10, 32, 0.1),
            &mut rng,
        );
        let (f, r) = crate::fr_eval_sets(&fed, UnlearnRequest::Class(5), &test);
        let (fa0, _) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa0 > 0.4, "trained model should know class 5 ({fa0})");

        let mut method = SgaOriginal::new(
            Phase::unlearning(1, 6, 32, 0.05),
            Phase::training(2, 8, 32, 0.05),
        );
        let outcome = method.unlearn(&mut fed, UnlearnRequest::Class(5), &mut rng);

        // After the ascent stage alone the class is forgotten.
        let (fa_mid, _) = split_accuracy(model.as_ref(), &outcome.post_unlearn_params, &f, &r);
        assert!(fa_mid < 0.2, "post-unlearn forget accuracy {fa_mid}");

        // After recovery the retained classes are restored.
        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa < 0.2, "final forget accuracy {fa}");
        assert!(ra > 0.5, "final retain accuracy {ra}");

        // Relearning brings the class back.
        method
            .relearn(
                &mut fed,
                UnlearnRequest::Class(5),
                &Phase::training(2, 8, 32, 0.05),
                &mut rng,
            )
            .expect("SGA supports relearning");
        let (fa2, _) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa2 > 0.5, "relearned forget accuracy {fa2}");
    }
}
