//! FU-MP: federated unlearning via class-discriminative channel pruning
//! (Wang et al., WWW 2022).

use crate::{
    retain_override, Capabilities, Efficiency, MethodOutcome, UnlearnRequest, UnlearningMethod,
};
use qd_autograd::{Tape, Var};
use qd_fed::{sgd_trainers, Federation, Phase, PhaseStats};
use qd_nn::ConvNet;
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use std::sync::Arc;
use std::time::Instant;

/// FU-MP unlearns a class by measuring, with a TF-IDF-style relevance
/// score over feature-map activations, which channels of the final conv
/// block most discriminate the target class — and pruning them (zeroing
/// their conv filter, bias and norm affine parameters). A recovery phase
/// restores the remaining classes.
///
/// Pruning is **irreversible**, so FU-MP supports neither client-level
/// unlearning nor relearning (Table 1); [`UnlearningMethod::relearn`]
/// returns `None`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qd_fed::Phase;
/// use qd_nn::ConvNet;
/// use qd_unlearn::{FuMp, UnlearningMethod};
///
/// let net = Arc::new(ConvNet::scaled_default(1, 10));
/// let m = FuMp::new(net, 0.3, 16, Phase::training(2, 8, 32, 0.01));
/// assert!(m.capabilities().class_level);
/// assert!(!m.capabilities().client_level);
/// ```
pub struct FuMp {
    convnet: Arc<ConvNet>,
    prune_fraction: f32,
    probe_per_class: usize,
    recover_phase: Phase,
}

impl std::fmt::Debug for FuMp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FuMp(prune {:.0}%)", self.prune_fraction * 100.0)
    }
}

impl FuMp {
    /// Creates FU-MP for a ConvNet, pruning `prune_fraction` of the final
    /// block's channels, probing activations with up to `probe_per_class`
    /// samples per class per client.
    ///
    /// The `convnet` must be the same architecture instance the federation
    /// trains (FU-MP is conv-specific by design; the original paper
    /// likewise only supports CNNs).
    ///
    /// # Panics
    ///
    /// Panics if `prune_fraction` is not in `(0, 1)`.
    pub fn new(
        convnet: Arc<ConvNet>,
        prune_fraction: f32,
        probe_per_class: usize,
        recover_phase: Phase,
    ) -> Self {
        assert!(
            prune_fraction > 0.0 && prune_fraction < 1.0,
            "prune fraction must be in (0, 1)"
        );
        FuMp {
            convnet,
            prune_fraction,
            probe_per_class,
            recover_phase,
        }
    }

    /// Mean absolute activation per channel of the final block, per
    /// class, aggregated over all clients' probe batches (simulating the
    /// clients' local relevance reports).
    fn class_channel_activation(&self, fed: &Federation, rng: &mut Rng) -> (Vec<Vec<f32>>, usize) {
        let classes = self.convnet.classes();
        let filters = self.convnet.filters();
        let block = self.convnet.blocks() - 1;
        let mut act = vec![vec![0.0f32; filters]; classes];
        let mut counts = vec![0usize; classes];
        let mut probed = 0usize;
        for i in 0..fed.n_clients() {
            let data = fed.client_data(i);
            for class in 0..classes {
                let members = data.indices_of_class(class);
                if members.is_empty() {
                    continue;
                }
                let take = self.probe_per_class.min(members.len());
                let picks = rng.choose_indices(members.len(), take);
                let idx: Vec<usize> = picks.into_iter().map(|p| members[p]).collect();
                let (x, _) = data.batch(&idx);
                probed += idx.len();
                let mut tape = Tape::new();
                let p: Vec<Var> = fed
                    .global()
                    .iter()
                    .map(|t| tape.constant(t.clone()))
                    .collect();
                let xv = tape.constant(x);
                let feat = self.convnet.block_output(&mut tape, &p, xv, block);
                let v = tape.value(feat);
                let dims = v.dims(); // (n, filters, h, w)
                                     // qd-lint: allow(panic-safety) -- block_output returns rank-4
                                     // (n, filters, h, w) by the ConvNet contract
                let hw = dims[2] * dims[3];
                // qd-lint: allow(panic-safety) -- block_output returns rank-4
                // (n, filters, h, w) by the ConvNet contract
                for b in 0..dims[0] {
                    for (ch, slot) in act[class].iter_mut().enumerate() {
                        let plane = &v.data()[(b * filters + ch) * hw..(b * filters + ch + 1) * hw];
                        *slot += plane.iter().map(|a| a.abs()).sum::<f32>() / hw as f32;
                    }
                }
                // qd-lint: allow(panic-safety) -- block_output returns rank-4
                // (n, filters, h, w) by the ConvNet contract
                counts[class] += dims[0];
            }
        }
        for (row, &cnt) in act.iter_mut().zip(&counts) {
            if cnt > 0 {
                for v in row.iter_mut() {
                    *v /= cnt as f32;
                }
            }
        }
        (act, probed)
    }

    /// TF-IDF-style relevance of each final-block channel for `target`:
    /// its activation share across classes.
    fn channel_relevance(&self, act: &[Vec<f32>], target: usize) -> Vec<f32> {
        let filters = self.convnet.filters();
        (0..filters)
            .map(|ch| {
                let total: f32 = act.iter().map(|row| row[ch]).sum();
                if total <= 1e-12 {
                    0.0
                } else {
                    act[target][ch] / total
                }
            })
            .collect()
    }

    /// Zeroes the conv filter, bias and InstanceNorm affine parameters of
    /// `channels` in the final block, plus the target class's classifier
    /// row — the single most class-discriminative "channel" of the model.
    /// (In the original paper's deeper CNNs the convolutional channels
    /// alone are discriminative enough; at this reproduction's width the
    /// representation is redundant, so severing the classifier pathway is
    /// needed to reproduce the paper's post-pruning forget accuracy of
    /// ~0%.)
    fn prune(&self, params: &mut [Tensor], channels: &[usize], target: usize) {
        let block = self.convnet.blocks() - 1;
        let base = self.convnet.conv_weight_indices()[block];
        // qd-lint: allow(panic-safety) -- conv weights are rank-2 (out,
        // fan-in) by the ConvNet contract
        let fan = params[base].dims()[1];
        for &ch in channels {
            params[base].data_mut()[ch * fan..(ch + 1) * fan].fill(0.0); // conv W row
            params[base + 1].data_mut()[ch] = 0.0; // conv bias
            params[base + 2].data_mut()[ch] = 0.0; // IN gamma
            params[base + 3].data_mut()[ch] = 0.0; // IN beta
        }
        let head = self.convnet.classifier_weight_index();
        // qd-lint: allow(panic-safety) -- classifier weights are rank-2
        // (classes, features) by the ConvNet contract
        let in_dim = params[head].dims()[1];
        params[head].data_mut()[target * in_dim..(target + 1) * in_dim].fill(0.0);
        // Push the pruned class's logit far below the others so argmax
        // never selects it, mirroring a fully severed output channel.
        params[head + 1].data_mut()[target] = -10.0;
    }
}

impl UnlearningMethod for FuMp {
    fn name(&self) -> &'static str {
        "FU-MP"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: true,
            client_level: false,
            relearn: false,
            storage_efficient: true,
            computation: Efficiency::Medium,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        let UnlearnRequest::Class(target) = request else {
            // qd-lint: allow(panic-safety) -- unsupported request kind is a
            // documented caller bug (`# Panics`)
            panic!("FU-MP only supports class-level unlearning");
        };
        // qd-lint: allow(determinism) -- accounting-only wall-clock: feeds
        // MethodOutcome compute time, never control flow
        let start = Instant::now();
        let (act, probed) = self.class_channel_activation(fed, rng);
        let relevance = self.channel_relevance(&act, target);
        let k = ((self.convnet.filters() as f32 * self.prune_fraction).ceil() as usize)
            .clamp(1, self.convnet.filters());
        let mut order: Vec<usize> = (0..relevance.len()).collect();
        order.sort_by(|&a, &b| relevance[b].total_cmp(&relevance[a]));
        let pruned: Vec<usize> = order.into_iter().take(k).collect();
        let mut params = fed.global().to_vec();
        self.prune(&mut params, &pruned, target);
        fed.set_global(params);
        let model_scalars: usize = fed.global().iter().map(Tensor::len).sum();
        let unlearn = PhaseStats {
            rounds: 1,
            samples_processed: probed,
            data_size: fed.clients().iter().map(qd_data::Dataset::len).sum(),
            wall: start.elapsed(),
            download_scalars: fed.n_clients() * model_scalars,
            upload_scalars: fed.n_clients() * self.convnet.filters() * self.convnet.classes(),
            ..PhaseStats::default()
        };
        let post_unlearn_params = fed.global().to_vec();

        let retain = retain_override(fed, request);
        let mut trainers = sgd_trainers(fed.model().clone(), fed.n_clients());
        let recovery = fed.run_phase(&mut trainers, Some(&retain), &self.recover_phase, rng);
        MethodOutcome {
            unlearn,
            recovery,
            post_unlearn_params,
            guard: None,
        }
    }

    fn relearn(
        &mut self,
        _fed: &mut Federation,
        _request: UnlearnRequest,
        _phase: &Phase,
        _rng: &mut Rng,
    ) -> Option<PhaseStats> {
        None // pruning is irreversible (Section 2.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::{partition_iid, SyntheticDataset};
    use qd_eval::split_accuracy;
    use qd_nn::Module;

    #[test]
    fn fump_prunes_and_recovers() {
        let mut rng = Rng::seed_from(0);
        let convnet = Arc::new(ConvNet::new(1, 16, 2, 8, 10));
        let model: Arc<dyn Module> = convnet.clone();
        let data = SyntheticDataset::Digits.generate(300, &mut rng);
        let test = SyntheticDataset::Digits.generate(150, &mut rng);
        let parts = partition_iid(data.len(), 3, &mut rng);
        let clients: Vec<_> = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        let mut trainers = sgd_trainers(model.clone(), 3);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(5, 6, 32, 0.1),
            &mut rng,
        );

        let (f, r) = crate::fr_eval_sets(&fed, UnlearnRequest::Class(2), &test);
        let (fa0, _) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa0 > 0.4, "model should know class 2 before ({fa0})");

        let mut m = FuMp::new(convnet.clone(), 0.5, 8, Phase::training(3, 8, 32, 0.1));
        let outcome = m.unlearn(&mut fed, UnlearnRequest::Class(2), &mut rng);

        // Pruned channels are actually zero.
        let base = convnet.conv_weight_indices()[convnet.blocks() - 1];
        let w = &outcome.post_unlearn_params[base];
        let fan = w.dims()[1];
        let zero_rows = (0..convnet.filters())
            .filter(|&ch| w.data()[ch * fan..(ch + 1) * fan].iter().all(|&v| v == 0.0))
            .count();
        assert_eq!(zero_rows, 4, "50% of 8 filters pruned");

        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(
            fa < fa0 * 0.7,
            "pruning should hurt the target class: {fa0} -> {fa}"
        );
        assert!(ra > 0.4, "recovery should keep other classes usable ({ra})");

        // Relearning is unsupported.
        assert!(m
            .relearn(
                &mut fed,
                UnlearnRequest::Class(2),
                &Phase::training(1, 1, 8, 0.1),
                &mut rng
            )
            .is_none());
    }

    #[test]
    #[should_panic(expected = "class-level")]
    fn fump_rejects_client_requests() {
        let mut rng = Rng::seed_from(1);
        let convnet = Arc::new(ConvNet::scaled_default(1, 10));
        let model: Arc<dyn Module> = convnet.clone();
        let data = SyntheticDataset::Digits.generate(20, &mut rng);
        let mut fed = Federation::new(model, vec![data], &mut rng);
        let mut m = FuMp::new(convnet, 0.3, 4, Phase::training(1, 1, 8, 0.1));
        let _ = m.unlearn(&mut fed, UnlearnRequest::Client(0), &mut rng);
    }
}
