//! S2U: unlearning a client by scaling its updates down and the remaining
//! clients' updates up (Gao et al., VeriFi 2022).

use crate::{Capabilities, Efficiency, MethodOutcome, UnlearnRequest, UnlearningMethod};
use qd_fed::ClientTrainer as _;
use qd_fed::{Federation, Phase, PhaseStats, SgdClientTrainer};
use qd_tensor::rng::Rng;
use qd_tensor::Tensor;
use std::time::Instant;

/// S2U ("scale-to-unlearn") continues federated training for a few rounds
/// while **down-scaling** the forgetting client's aggregation weight and
/// **up-scaling** the remaining clients', so the target's influence decays
/// out of the model. Unlearning and recovery are integrated in the single
/// continued-training stage, like retraining.
///
/// By construction the method only addresses *client-level* requests
/// (Table 1).
///
/// # Examples
///
/// ```
/// use qd_fed::Phase;
/// use qd_unlearn::{S2U, UnlearningMethod};
///
/// let m = S2U::new(Phase::training(4, 10, 64, 0.01), 0.05);
/// assert!(m.capabilities().client_level);
/// assert!(!m.capabilities().class_level);
/// ```
#[derive(Debug, Clone)]
pub struct S2U {
    phase: Phase,
    down_scale: f32,
}

impl S2U {
    /// Creates S2U with the continued-training schedule and the factor by
    /// which the target client's FedAvg weight is multiplied (the
    /// remaining weights are renormalized upward so weights still sum
    /// to one).
    ///
    /// # Panics
    ///
    /// Panics if `down_scale` is not in `[0, 1)`.
    pub fn new(phase: Phase, down_scale: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&down_scale),
            "down scale must be in [0, 1)"
        );
        S2U { phase, down_scale }
    }
}

impl UnlearningMethod for S2U {
    fn name(&self) -> &'static str {
        "S2U"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            class_level: false,
            client_level: true,
            relearn: true,
            storage_efficient: true,
            computation: Efficiency::Low,
        }
    }

    fn unlearn(
        &mut self,
        fed: &mut Federation,
        request: UnlearnRequest,
        rng: &mut Rng,
    ) -> MethodOutcome {
        let UnlearnRequest::Client(target) = request else {
            // qd-lint: allow(panic-safety) -- unsupported request kind is a
            // documented caller bug (`# Panics`)
            panic!("S2U only supports client-level unlearning");
        };
        assert!(target < fed.n_clients(), "target client out of range");
        // qd-lint: allow(determinism) -- accounting-only wall-clock: feeds
        // MethodOutcome compute time, never control flow
        let start = Instant::now();
        let sizes: Vec<usize> = fed.clients().iter().map(qd_data::Dataset::len).collect();
        let total: usize = sizes.iter().sum();
        // Scaled FedAvg weights: target down, others renormalized up.
        let base: Vec<f32> = sizes.iter().map(|&s| s as f32 / total as f32).collect();
        let target_w = base[target] * self.down_scale;
        let others: f32 = 1.0 - base[target];
        let up = if others > 0.0 {
            (1.0 - target_w) / others
        } else {
            0.0
        };
        let weights: Vec<f32> = base
            .iter()
            .enumerate()
            .map(|(i, &w)| if i == target { target_w } else { w * up })
            .collect();

        let mut samples = 0usize;
        for _ in 0..self.phase.rounds {
            let global = fed.global().to_vec();
            let mut new_global: Vec<Tensor> =
                global.iter().map(|t| Tensor::zeros(t.dims())).collect();
            for (i, &weight) in weights.iter().enumerate() {
                if fed.client_data(i).is_empty() {
                    continue;
                }
                let mut trainer = SgdClientTrainer::new(fed.model().clone());
                let mut crng = rng.fork(i as u64);
                let outcome =
                    trainer.local_round(global.clone(), fed.client_data(i), &self.phase, &mut crng);
                samples += outcome.samples_processed;
                for (g, p) in new_global.iter_mut().zip(&outcome.params) {
                    g.axpy(weight, p);
                }
            }
            fed.set_global(new_global);
        }
        let model_scalars: usize = fed.global().iter().map(Tensor::len).sum();
        let exchanged = self.phase.rounds * fed.n_clients() * model_scalars;
        let unlearn = PhaseStats {
            rounds: self.phase.rounds,
            samples_processed: samples,
            data_size: total,
            wall: start.elapsed(),
            download_scalars: exchanged,
            upload_scalars: exchanged,
            ..PhaseStats::default()
        };
        MethodOutcome {
            unlearn,
            recovery: PhaseStats::default(),
            post_unlearn_params: fed.global().to_vec(),
            guard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_data::SyntheticDataset;
    use qd_eval::split_accuracy;
    use qd_fed::sgd_trainers;
    use qd_nn::{Mlp, Module};
    use std::sync::Arc;

    #[test]
    fn s2u_reduces_target_client_influence() {
        // Client 0 exclusively owns classes 0-4; the others own 5-9.
        // After S2U, accuracy on client 0's data should drop toward the
        // level of a model that never saw it, while other data stays
        // accurate.
        let mut rng = Rng::seed_from(0);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
        let all = SyntheticDataset::Digits.generate(500, &mut rng);
        let zero_to_four: Vec<usize> = (0..all.len()).filter(|&i| all.label(i) < 5).collect();
        let five_to_nine: Vec<usize> = (0..all.len()).filter(|&i| all.label(i) >= 5).collect();
        let target_data = all.subset(&zero_to_four);
        let rest = all.subset(&five_to_nine);
        let (r1, r2) = rest.split(0.5, &mut rng);
        let clients = vec![target_data, r1, r2];
        let mut fed = Federation::new(model.clone(), clients, &mut rng);
        let mut trainers = sgd_trainers(model.clone(), 3);
        fed.run_phase(
            &mut trainers,
            None,
            &Phase::training(6, 8, 32, 0.1),
            &mut rng,
        );

        let (f, r) = crate::fr_eval_sets(&fed, UnlearnRequest::Client(0), &all);
        let (fa0, ra0) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(fa0 > 0.5, "target client data learned ({fa0})");

        let mut m = S2U::new(Phase::training(4, 8, 32, 0.1), 0.0);
        m.unlearn(&mut fed, UnlearnRequest::Client(0), &mut rng);
        let (fa, ra) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
        assert!(
            fa < fa0 * 0.5,
            "target influence should shrink: {fa0} -> {fa}"
        );
        assert!(ra >= ra0 - 0.1, "others keep accuracy: {ra0} -> {ra}");
    }

    #[test]
    #[should_panic(expected = "client-level")]
    fn s2u_rejects_class_requests() {
        let mut rng = Rng::seed_from(1);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 10]));
        let data = SyntheticDataset::Digits.generate(20, &mut rng);
        let mut fed = Federation::new(model, vec![data], &mut rng);
        let mut m = S2U::new(Phase::training(1, 1, 8, 0.1), 0.1);
        let _ = m.unlearn(&mut fed, UnlearnRequest::Class(0), &mut rng);
    }
}
