//! Shrinking acceptance: a deliberately-stalling schedule shrinks to a
//! minimal reproducer that still trips the same invariant, and the
//! committed `chaos-repro.json` fixture replays to a byte-for-byte
//! identical violation report.

use qd_chaos::{shrink, ChaosSchedule, FaultSpec, Harness, InjectedFault, Repro, Workload};
use qd_core::CrashPoint;

/// A schedule that cannot complete: every allowed lifetime (initial
/// deployment plus the single resume) is killed at an early syscall,
/// so the run stalls — a liveness violation by construction.
fn stalling_schedule() -> ChaosSchedule {
    let workload = Workload {
        train_seed: 5,
        samples: 60,
        clients: 2,
        rounds: 1,
        byzantine_frac: 0.0,
        net_drop: 0.2,
        ascent_spike: 1.0,
        tenants: 2,
        requests: 3,
        serve_seed: 9,
        breaker_trip: 0,
        breaker_cooldown: 2,
        relearn: true,
    };
    let faults = (0..2)
        .map(|attempt| InjectedFault {
            attempt,
            spec: FaultSpec::Crash(CrashPoint::VfsOp(5)),
        })
        .collect();
    ChaosSchedule {
        seed: 5,
        workload,
        faults,
        max_resumes: 1,
    }
}

#[test]
fn stalling_schedule_shrinks_to_a_minimal_reproducer() {
    let mut harness = Harness::new();
    let schedule = stalling_schedule();
    let report = harness.run(&schedule).expect("schedule executes");
    assert!(!report.completed, "the schedule must stall");
    let violation = report
        .violations
        .iter()
        .find(|v| v.invariant == "run-completes")
        .expect("a stall is a run-completes violation")
        .clone();

    let repro = shrink(&mut harness, &schedule, &violation).expect("shrinking succeeds");

    // Minimality: both kills are load-bearing (dropping either lets
    // the run complete), and every workload dimension shrank to its
    // floor.
    assert_eq!(repro.schedule.faults.len(), 2, "both kills are needed");
    for fault in &repro.schedule.faults {
        match fault.spec {
            FaultSpec::Crash(CrashPoint::VfsOp(op)) => {
                assert_eq!(op, 0, "kill op indices shrink to the first syscall")
            }
            other => panic!("unexpected shrunk fault {other:?}"),
        }
    }
    let w = &repro.schedule.workload;
    assert_eq!(w.tenants, 1);
    assert_eq!(w.requests, 1);
    assert!(!w.relearn);
    assert_eq!(w.net_drop, 0.0);

    // The shrunk schedule still trips the same invariant, and the
    // stored violation is exactly what a replay reproduces.
    let replay = harness.run(&repro.schedule).expect("replay executes");
    let replayed = replay
        .violations
        .iter()
        .find(|v| v.invariant == "run-completes")
        .expect("the reproducer still stalls");
    assert_eq!(replayed, &repro.violation, "replay must be byte-for-byte");
}

/// Regenerates the committed fixture. Run manually after an intentional
/// format or harness change:
/// `cargo test -p qd-chaos --test shrink -- --ignored regen`.
#[test]
#[ignore = "fixture generator, run on intentional format changes"]
fn regen_fixture() {
    let mut harness = Harness::new();
    let schedule = stalling_schedule();
    let report = harness.run(&schedule).expect("schedule executes");
    let violation = report
        .violations
        .iter()
        .find(|v| v.invariant == "run-completes")
        .expect("a stall is a run-completes violation")
        .clone();
    let repro = shrink(&mut harness, &schedule, &violation).expect("shrinking succeeds");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/chaos-repro.json"
    );
    std::fs::write(path, repro.to_json().expect("repros encode")).expect("fixture writes");
}

#[test]
fn committed_fixture_replays_byte_for_byte() {
    let fixture = include_str!("fixtures/chaos-repro.json");
    let repro = Repro::from_json(fixture).expect("fixture parses");
    // The fixture is the canonical serialization of itself.
    assert_eq!(
        repro.to_json().expect("repros encode"),
        fixture,
        "fixture serialization drifted"
    );
    let mut harness = Harness::new();
    let replay = harness
        .run(&repro.schedule)
        .expect("fixture schedule executes");
    let replayed = replay
        .violations
        .iter()
        .find(|v| v.invariant == repro.violation.invariant)
        .expect("fixture schedule still trips its invariant");
    assert_eq!(
        replayed, &repro.violation,
        "replayed violation must match the committed one byte-for-byte"
    );
}
