//! Chaos acceptance: generated schedules run violation-free on the
//! current system, and the whole pipeline — generation, execution,
//! reporting — is bit-for-bit deterministic.

use qd_chaos::{ChaosSchedule, Harness};
use serde::Serialize;

fn report_json(report: &qd_chaos::RunReport) -> String {
    serde_json::to_string(&report.to_value()).expect("reports encode")
}

#[test]
fn generated_schedules_complete_without_violations() {
    let mut harness = Harness::new();
    // A small sweep over one seed: shares one training epoch through
    // the harness cache, varies the serving mix and fault plans.
    for run in 0..3 {
        let schedule = ChaosSchedule::generate(7, run);
        let report = harness.run(&schedule).expect("schedule executes");
        assert!(
            report.completed,
            "run {run} stalled: {:?}",
            report.violations
        );
        assert!(
            report.violations.is_empty(),
            "run {run} violated invariants: {:?}",
            report.violations
        );
        assert_eq!(report.invariants_checked, 6);
    }
}

#[test]
fn execution_is_bit_for_bit_deterministic() {
    let schedule = ChaosSchedule::generate(11, 1);
    let mut first = Harness::new();
    let mut second = Harness::new();
    let a = first.run(&schedule).expect("first execution");
    let b = second.run(&schedule).expect("second execution");
    assert_eq!(report_json(&a), report_json(&b), "reports diverged");
    // And again on the same (warm-cache) harness.
    let c = first.run(&schedule).expect("warm re-execution");
    assert_eq!(report_json(&a), report_json(&c), "warm re-run diverged");
}
