//! The deterministic whole-system scenario a chaos schedule drives.
//!
//! [`Harness::run`] executes one [`ChaosSchedule`] twice over the full
//! deploy → serve → crash → resume → relearn lifecycle: a fault-free
//! *reference* run, and a *faulted* run that arms the schedule's
//! failures lifetime by lifetime on a [`FaultFs`], crashing the
//! in-memory machine after every process death and resuming from
//! whatever survived. Both runs share the workload (training mix,
//! Byzantine plan, serving traffic) bit-for-bit, so the invariant
//! registry can demand identical terminal states.

use crate::schedule::{ChaosSchedule, Workload};
use qd_core::{
    Checkpoint, CrashPoint, FaultFs, JournalRecord, QuickDrop, QuickDropConfig, RequestJournal,
    RequestState, Vfs,
};
use qd_data::{partition_iid, Dataset, SyntheticDataset};
use qd_fed::{FaultPlan, Federation, Phase};
use qd_net::NetConfig;
use qd_nn::{Mlp, Module};
use qd_serve::{
    frontier_summary, run_service, run_service_isolated, ChaosKill, FrontierSummary,
    IsolationConfig, ServeConfig, ServeStats,
};
use qd_tensor::rng::{Rng, RngState};
use qd_tensor::Tensor;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A harness-level failure: the schedule itself is unrunnable (invalid,
/// or its fault-free reference run does not complete). Distinct from an
/// invariant violation, which is the *system* misbehaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosError(pub String);

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos harness: {}", self.0)
    }
}

impl std::error::Error for ChaosError {}

/// The terminal state of one complete lifecycle — everything the
/// invariants compare.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Final global model parameters.
    pub global: Vec<Tensor>,
    /// Final RNG stream position.
    pub rng: RngState,
    /// Every durable journal record.
    pub records: Vec<JournalRecord>,
    /// The reported SLA stats.
    pub stats: ServeStats,
    /// Journal↔plan frontier alignment, when the journal is still
    /// alignable (`None` after a RELEARNED terminal record, which
    /// [`qd_serve::frontier_summary`] rightly refuses).
    pub frontier: Option<Result<FrontierSummary, String>>,
    /// Every surviving on-disk file, bit for bit.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
}

/// What one faulted schedule execution produced — the invariant
/// registry's input.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The schedule that ran.
    pub schedule: ChaosSchedule,
    /// Terminal state of the fault-free reference run.
    pub reference: Terminal,
    /// Terminal state of the faulted run, when it completed within the
    /// resume budget.
    pub faulted: Option<Terminal>,
    /// Process lifetimes the faulted run used (1 = no deaths).
    pub attempts: u32,
    /// Faults that actually fired (scheduled faults whose op index was
    /// never reached do not count).
    pub faults_fired: u64,
    /// The last lifetime's death message when the run stalled.
    pub last_error: String,
}

impl RunOutcome {
    /// True when the faulted run never reached a terminal state within
    /// `max_resumes` — the liveness failure the run-completes
    /// invariant reports.
    pub fn stalled(&self) -> bool {
        self.faulted.is_none()
    }
}

/// The serializable result of one schedule execution: what `qd chaos`
/// prints per run and what the determinism tests compare.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Whether the faulted run reached a terminal state.
    pub completed: bool,
    /// Process lifetimes used.
    pub attempts: u32,
    /// Faults that actually fired.
    pub faults_fired: u64,
    /// Invariants evaluated against the outcome.
    pub invariants_checked: u64,
    /// Violations found (empty on a healthy run).
    pub violations: Vec<crate::invariant::Violation>,
}

/// One trained deployment, snapshotted so every run of a seed reuses
/// the (expensive) federated training epoch.
struct DeploySeed {
    ckpt: Checkpoint,
    rng: RngState,
}

/// The chaos executor. Caches trained deployments and fault-free
/// reference terminals across runs, keyed by the workload knobs that
/// produced them, so a multi-run sweep trains once per environment.
#[derive(Default)]
pub struct Harness {
    deploys: BTreeMap<String, DeploySeed>,
    references: BTreeMap<String, Terminal>,
}

fn ckpt_path() -> PathBuf {
    PathBuf::from("chaos.ckpt.json")
}

fn stats_path() -> PathBuf {
    PathBuf::from("chaos.stats.json")
}

/// The environment cache key: every knob that shapes training.
fn env_key(w: &Workload) -> String {
    format!(
        "seed={} samples={} clients={} rounds={} byz={:08x} drop={:08x}",
        w.train_seed,
        w.samples,
        w.clients,
        w.rounds,
        w.byzantine_frac.to_bits(),
        w.net_drop.to_bits(),
    )
}

/// The reference cache key: the whole workload.
fn workload_key(w: &Workload) -> String {
    format!("{w:?}")
}

fn serve_config(w: &Workload) -> ServeConfig {
    ServeConfig {
        tenants: w.tenants,
        arrival_requests: w.requests,
        arrival_gap_us: 300,
        queue_cap: 8,
        coalesce: true,
        max_batch: 3,
        weights: vec![1],
        classes: 2,
        clients: w.clients,
        // Under an ascent spike the interesting mix is client-forget
        // requests (their ascents involve the Byzantine clients
        // directly); without a spike the default class-heavy mix
        // exercises coalescing harder.
        class_share: if spike_active(w) { 0.0 } else { 0.7 },
        seed: w.serve_seed,
        ..ServeConfig::default()
    }
}

fn spike_active(w: &Workload) -> bool {
    w.ascent_spike > 1.0 && w.byzantine_frac > 0.0
}

fn isolation(w: &Workload) -> IsolationConfig {
    if spike_active(w) {
        IsolationConfig {
            unit_retries: 2,
            bisect: true,
            breaker_trip: w.breaker_trip,
            breaker_cooldown: w.breaker_cooldown,
        }
    } else {
        IsolationConfig::default()
    }
}

fn guard_policy() -> qd_unlearn::GuardPolicy {
    // Coalesced batches run several ascents back-to-back before the
    // shared recovery, so drift accumulates well past the
    // single-request budget; keep a real budget in force with enough
    // headroom that a clean run never rolls back.
    qd_unlearn::GuardPolicy {
        drift_budget: 64.0,
        ..qd_unlearn::GuardPolicy::default()
    }
}

/// A federation stub whose clients hold no real data — everything the
/// serving path needs lives in the checkpoint's synthetic sets.
fn stub_federation(qd: &QuickDrop, params: Vec<Tensor>) -> Result<Federation, String> {
    let first = qd
        .synthetic_sets()
        .first()
        .ok_or_else(|| "checkpoint holds no synthetic sets".to_string())?;
    let (c, h, wd) = first.sample_dims();
    let classes = first.classes();
    let n = qd.synthetic_sets().len();
    let empty = Dataset::new(Vec::new(), Vec::new(), classes, c, h, wd);
    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 16, 10]));
    Ok(Federation::with_params(model, vec![empty; n], params))
}

impl Harness {
    /// A fresh harness with empty caches.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Executes `schedule`: fault-free reference run, faulted run with
    /// crash-and-resume, then the full invariant registry.
    ///
    /// # Errors
    ///
    /// [`ChaosError`] when the schedule is invalid or its fault-free
    /// reference run fails — both mean the *schedule* is broken, not
    /// the system under test.
    pub fn run(&mut self, schedule: &ChaosSchedule) -> Result<RunReport, ChaosError> {
        let outcome = self.execute(schedule)?;
        let registry = crate::invariant::registry();
        let mut violations = Vec::new();
        for invariant in &registry {
            if let Some(v) = invariant.check(&outcome) {
                violations.push(v);
            }
        }
        Ok(RunReport {
            completed: !outcome.stalled(),
            attempts: outcome.attempts,
            faults_fired: outcome.faults_fired,
            invariants_checked: registry.len() as u64,
            violations,
        })
    }

    /// Executes `schedule` and returns the raw outcome without checking
    /// invariants — what the shrinker re-runs candidates through.
    ///
    /// # Errors
    ///
    /// As [`Harness::run`].
    pub fn execute(&mut self, schedule: &ChaosSchedule) -> Result<RunOutcome, ChaosError> {
        schedule.validate().map_err(ChaosError)?;
        let w = schedule.workload.clone();
        self.ensure_deploy(&w)?;
        self.ensure_reference(&w)?;
        let reference = self
            .references
            .get(&workload_key(&w))
            .cloned()
            .ok_or_else(|| ChaosError("reference cache miss after fill".to_string()))?;

        let fs = Arc::new(FaultFs::new());
        let mut attempt: u32 = 0;
        let mut faults_fired: u64 = 0;
        let mut faulted = None;
        let mut last_error = String::new();
        loop {
            let (storage, crash) = schedule.faults_for(attempt);
            let base = fs.op_count();
            let mut armed: u64 = 0;
            for (op, fault) in &storage {
                fs.schedule_fault(base + op, fault.to_fault());
                armed += 1;
            }
            let mut kill = None;
            if let Some(point) = crash {
                match point {
                    CrashPoint::VfsOp(op) => {
                        // Re-anchor the schedule's lifetime-relative op
                        // index to this lifetime's first syscall.
                        if fs.arm(&CrashPoint::VfsOp(base + op)) {
                            armed += 1;
                        }
                    }
                    CrashPoint::Boundary { .. } => kill = ChaosKill::from_point(&point),
                }
            }
            match self.attempt(&w, &fs, kill) {
                Ok(terminal) => {
                    faults_fired += armed.saturating_sub(fs.pending_faults());
                    faulted = Some(terminal);
                    break;
                }
                Err(death) => {
                    faults_fired += armed.saturating_sub(fs.pending_faults());
                    if death.starts_with(BOUNDARY_DEATH) {
                        faults_fired += 1;
                    }
                    last_error = death;
                    fs.crash();
                    attempt += 1;
                    if attempt > schedule.max_resumes {
                        break;
                    }
                }
            }
        }
        // Lifetimes used: one per death, plus the final completing one.
        let attempts = attempt + u32::from(faulted.is_some());
        Ok(RunOutcome {
            schedule: schedule.clone(),
            reference,
            faulted,
            attempts,
            faults_fired,
            last_error,
        })
    }

    fn ensure_deploy(&mut self, w: &Workload) -> Result<(), ChaosError> {
        let key = env_key(w);
        if self.deploys.contains_key(&key) {
            return Ok(());
        }
        let mut rng = Rng::seed_from(w.train_seed);
        let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 16, 10]));
        let data = SyntheticDataset::Digits.generate(w.samples, &mut rng);
        let parts = partition_iid(data.len(), w.clients, &mut rng);
        let clients = parts.iter().map(|p| data.subset(p)).collect();
        let mut fed = Federation::new(model, clients, &mut rng);
        if w.byzantine_frac > 0.0 {
            // Byzantine clients run the full default fault menu during
            // training; the trained deployment must already tolerate
            // them (robust aggregation is part of the environment).
            fed.set_fault_plan(Some(FaultPlan::new(w.train_seed, w.byzantine_frac)));
        }
        let mut cfg = QuickDropConfig::scaled_test();
        cfg.train_phase = Phase::training(w.rounds, 2, 16, 0.1);
        let cfg = cfg.with_net(NetConfig::lossy(w.train_seed, w.net_drop));
        let (qd, _) = QuickDrop::train(&mut fed, cfg, &mut rng);
        fed.set_fault_plan(None);
        self.deploys.insert(
            key,
            DeploySeed {
                ckpt: Checkpoint::capture(fed.global(), &qd),
                rng: rng.state(),
            },
        );
        Ok(())
    }

    fn ensure_reference(&mut self, w: &Workload) -> Result<(), ChaosError> {
        let key = workload_key(w);
        if self.references.contains_key(&key) {
            return Ok(());
        }
        let fs = Arc::new(FaultFs::new());
        let terminal = self
            .attempt(w, &fs, None)
            .map_err(|e| ChaosError(format!("fault-free reference run failed: {e}")))?;
        self.references.insert(key, terminal);
        Ok(())
    }

    /// One process lifetime: deploy or recover from whatever `fs`
    /// holds, serve to completion, persist stats, relearn when the
    /// workload asks for it. Any surfaced storage error or boundary
    /// preemption is the process dying, reported as `Err`.
    fn attempt(
        &self,
        w: &Workload,
        fs: &Arc<FaultFs>,
        kill: Option<ChaosKill>,
    ) -> Result<Terminal, String> {
        let seed = self
            .deploys
            .get(&env_key(w))
            .ok_or_else(|| "deploy cache miss".to_string())?;
        let ckpt = ckpt_path();
        let journal_path = RequestJournal::path_for_checkpoint(&ckpt);

        // Deploy fresh or recover the durable checkpoint. The fresh
        // path saves the checkpoint before any journal write, so a
        // missing checkpoint implies an empty journal.
        let fresh = fs.file(&ckpt).is_none();
        let restored = if fresh {
            seed.ckpt.clone()
        } else {
            let (loaded, _fell_back) =
                Checkpoint::load_with_fallback_on(fs.as_ref(), &ckpt).map_err(|e| e.to_string())?;
            loaded
        };
        let (params, mut qd) = restored.restore().map_err(|e| e.to_string())?;
        let mut fed = stub_federation(&qd, params)?;
        let mut rng = Rng::from_state(&seed.rng);
        if fresh {
            seed.ckpt
                .save_on(fs.as_ref(), &ckpt)
                .map_err(|e| e.to_string())?;
        }

        let vfs: Arc<dyn Vfs> = Arc::clone(fs) as Arc<dyn Vfs>;
        let mut journal = RequestJournal::open_on(vfs, journal_path).map_err(|e| e.to_string())?;

        if spike_active(w) {
            fed.set_fault_plan(Some(FaultPlan::serving_spike(
                w.train_seed,
                w.byzantine_frac,
                w.ascent_spike,
            )));
        }
        let cfg = serve_config(w);
        let policy = guard_policy();
        let iso = isolation(w);

        let relearned = journal
            .records()
            .iter()
            .any(|r| r.state == RequestState::Relearned);
        if relearned {
            // A previous lifetime finished the whole lifecycle; rebuild
            // live state from the tail and reread the persisted stats.
            qd.restore_tail(&mut fed, &journal, &mut rng);
            let stats = read_stats(fs)?;
            return Ok(Terminal {
                global: fed.global().to_vec(),
                rng: rng.state(),
                records: journal.records().to_vec(),
                stats,
                frontier: None,
                files: fs.files(),
            });
        }

        let run = if iso.active() {
            // The isolated executor resumes in-flight units itself (it
            // must re-derive the retry-ladder rung first); the plain
            // resume would finish them under the base policy.
            run_service_isolated(
                &mut qd,
                &mut fed,
                &mut journal,
                &cfg,
                Some(&policy),
                &iso,
                &mut rng,
                kill,
            )
            .map_err(|e| e.to_string())?
        } else {
            qd.resume_requests(&mut fed, &mut journal, Some(&policy), &mut rng)
                .map_err(|e| e.to_string())?;
            run_service(
                &mut qd,
                &mut fed,
                &mut journal,
                &cfg,
                Some(&policy),
                &mut rng,
                kill,
            )
            .map_err(|e| e.to_string())?
        };
        if run.preempted {
            return Err(format!(
                "{BOUNDARY_DEATH} after {} executed unit(s)",
                run.executed_units
            ));
        }

        let frontier = frontier_summary(&cfg, &journal).map_err(|e| e.to_string());
        run.stats
            .save_json_on(fs.as_ref(), &stats_path())
            .map_err(|e| e.to_string())?;

        if w.relearn {
            let recovered = journal
                .records()
                .iter()
                .find(|r| r.state == RequestState::Recovered)
                .map(|r| r.request);
            if let Some(request) = recovered {
                let phase = qd.config().relearn_phase;
                qd.relearn_journaled(&mut fed, &mut journal, request, &phase, &mut rng)
                    .map_err(|e| e.to_string())?;
            }
        }

        Ok(Terminal {
            global: fed.global().to_vec(),
            rng: rng.state(),
            records: journal.records().to_vec(),
            stats: run.stats,
            frontier: Some(frontier),
            files: fs.files(),
        })
    }
}

/// Prefix of the death message a journal-boundary kill produces; the
/// fault accounting uses it to count the kill as fired (a boundary
/// preemption leaves no unfired entry in the `FaultFs` schedule).
const BOUNDARY_DEATH: &str = "preempted at journal boundary";

fn read_stats(fs: &FaultFs) -> Result<ServeStats, String> {
    let bytes = fs
        .file(&stats_path())
        .ok_or_else(|| "RELEARNED journal but no persisted stats".to_string())?;
    let text = String::from_utf8(bytes).map_err(|e| e.to_string())?;
    let value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    serde::Deserialize::from_value(&value).map_err(|e: serde::DeError| e.to_string())
}
