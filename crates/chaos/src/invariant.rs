//! The invariant registry: what must hold after every chaos run.
//!
//! Each invariant is a [`dyn Invariant`](Invariant) over the whole
//! [`RunOutcome`] — the schedule, the fault-free reference terminal
//! and the faulted terminal — and returns a typed [`Violation`] on
//! failure. Violation details are fully deterministic strings, because
//! `qd chaos --replay` asserts a stored violation reproduces
//! byte-for-byte.

use crate::scenario::{RunOutcome, Terminal};
use serde::{Deserialize, Serialize};

/// One invariant failure, serializable into `chaos-repro.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The [`Invariant::name`] that tripped.
    pub invariant: String,
    /// Deterministic description of the first divergence found.
    pub detail: String,
}

/// A property of the system that every chaos run must preserve.
pub trait Invariant {
    /// Stable kebab-case identifier (keys `chaos-repro.json` and the
    /// README contract table).
    fn name(&self) -> &'static str;
    /// One-sentence statement of the contract being checked.
    fn contract(&self) -> &'static str;
    /// Evaluates the invariant; `Some` is a violation.
    fn check(&self, run: &RunOutcome) -> Option<Violation>;
}

/// The full registry, in the order invariants are evaluated.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(RunCompletes),
        Box::new(KillResumeEquivalence),
        Box::new(JournalFrontier),
        Box::new(StatsAccounting),
        Box::new(GuardMonotonicity),
        Box::new(NoOrphanedTmp),
    ]
}

fn violation(name: &str, detail: String) -> Option<Violation> {
    Some(Violation {
        invariant: name.to_string(),
        detail,
    })
}

/// Liveness: the faulted run reaches a terminal state within the
/// schedule's resume budget.
struct RunCompletes;

impl Invariant for RunCompletes {
    fn name(&self) -> &'static str {
        "run-completes"
    }
    fn contract(&self) -> &'static str {
        "a faulted run terminates within max_resumes process lifetimes"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        if !run.stalled() {
            return None;
        }
        violation(
            self.name(),
            format!(
                "stalled after {} lifetime(s) (max_resumes {}): {}",
                run.attempts, run.schedule.max_resumes, run.last_error
            ),
        )
    }
}

/// The headline crash-recovery contract: the faulted run's terminal
/// state is bit-for-bit the fault-free reference — model bits, RNG
/// stream, every journal record, stats, and every surviving byte on
/// disk.
struct KillResumeEquivalence;

impl Invariant for KillResumeEquivalence {
    fn name(&self) -> &'static str {
        "kill-resume-equivalence"
    }
    fn contract(&self) -> &'static str {
        "crash-and-resume terminates bit-for-bit identical to the unfailed run"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        let faulted = run.faulted.as_ref()?;
        compare_terminals(&run.reference, faulted).map(|detail| Violation {
            invariant: self.name().to_string(),
            detail,
        })
    }
}

/// The first divergence between two terminals, or `None` when they are
/// bit-for-bit identical in every compared dimension.
fn compare_terminals(reference: &Terminal, faulted: &Terminal) -> Option<String> {
    if let Some(detail) = compare_params("global model", &reference.global, &faulted.global) {
        return Some(detail);
    }
    if reference.rng != faulted.rng {
        return Some("RNG stream position diverged at terminal state".to_string());
    }
    if reference.records.len() != faulted.records.len() {
        return Some(format!(
            "journal length diverged: reference {} record(s), faulted {}",
            reference.records.len(),
            faulted.records.len()
        ));
    }
    for (a, b) in reference.records.iter().zip(&faulted.records) {
        if (a.seq, a.request, a.state, a.batch) != (b.seq, b.request, b.state, b.batch) {
            return Some(format!(
                "journal record diverged: reference seq {} {} {:?} vs faulted seq {} {} {:?}",
                a.seq, a.request, a.state, b.seq, b.request, b.state
            ));
        }
        if a.rng != b.rng {
            return Some(format!(
                "record RNG diverged at seq {} {:?}",
                a.seq, a.state
            ));
        }
        if a.guard != b.guard {
            return Some(format!(
                "record guard stats diverged at seq {} {:?}",
                a.seq, a.state
            ));
        }
        if let Some(detail) = compare_params("journaled model", &a.global, &b.global) {
            return Some(format!("at seq {} {:?}: {detail}", a.seq, a.state));
        }
    }
    if reference.stats != faulted.stats {
        return Some(format!(
            "stats diverged: reference {:?} vs faulted {:?}",
            reference.stats, faulted.stats
        ));
    }
    let ref_files: Vec<_> = reference.files.keys().collect();
    let faulted_files: Vec<_> = faulted.files.keys().collect();
    if ref_files != faulted_files {
        return Some(format!(
            "on-disk file set diverged: reference {ref_files:?} vs faulted {faulted_files:?}"
        ));
    }
    for (path, bytes) in &reference.files {
        if faulted.files.get(path).is_none_or(|b| b != bytes) {
            return Some(format!("bytes of {} diverged", path.display()));
        }
    }
    None
}

fn compare_params(what: &str, a: &[qd_tensor::Tensor], b: &[qd_tensor::Tensor]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!(
            "{what}: parameter count diverged ({} vs {})",
            a.len(),
            b.len()
        ));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.data().len() != y.data().len() {
            return Some(format!("{what}: tensor {i} shape diverged"));
        }
        for (j, (u, v)) in x.data().iter().zip(y.data()).enumerate() {
            if u.to_bits() != v.to_bits() {
                return Some(format!("{what}: tensor {i} element {j} diverged"));
            }
        }
    }
    None
}

/// The journal aligns with the plan and its frontier is internally
/// consistent on a completed run: every unit done, and every member
/// with a durable RECEIVED record reached exactly one terminal state.
struct JournalFrontier;

impl Invariant for JournalFrontier {
    fn name(&self) -> &'static str {
        "journal-frontier"
    }
    fn contract(&self) -> &'static str {
        "the journal aligns with the plan; completed frontiers are internally consistent"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        let terminals = [
            ("reference", &run.reference),
            ("faulted", run.faulted.as_ref()?),
        ];
        for (which, terminal) in terminals {
            let Some(frontier) = &terminal.frontier else {
                continue;
            };
            let summary = match frontier {
                Ok(s) => s,
                Err(e) => {
                    return violation(
                        self.name(),
                        format!("{which} journal failed plan alignment: {e}"),
                    )
                }
            };
            if summary.done != summary.units {
                return violation(
                    self.name(),
                    format!(
                        "{which} frontier incomplete: {} of {} unit(s) done on a terminal run",
                        summary.done, summary.units
                    ),
                );
            }
            let terminal_members = summary.recovered + summary.quarantined + summary.failed;
            if terminal_members != summary.received {
                return violation(
                    self.name(),
                    format!(
                        "{which} frontier leaks members: {} RECEIVED but {} terminal \
                         ({} recovered + {} quarantined + {} failed)",
                        summary.received,
                        terminal_members,
                        summary.recovered,
                        summary.quarantined,
                        summary.failed
                    ),
                );
            }
        }
        None
    }
}

/// The ServeStats accounting identities hold unconditionally.
struct StatsAccounting;

impl Invariant for StatsAccounting {
    fn name(&self) -> &'static str {
        "stats-accounting"
    }
    fn contract(&self) -> &'static str {
        "admitted = served + quarantined + shed + pending; offered = admitted + rejected"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        let terminals = [
            ("reference", &run.reference),
            ("faulted", run.faulted.as_ref()?),
        ];
        for (which, terminal) in terminals {
            let s = &terminal.stats;
            let accounted = s.served + s.quarantined + s.shed + s.pending;
            if s.admitted != accounted {
                return violation(
                    self.name(),
                    format!(
                        "{which}: admitted {} != served {} + quarantined {} + shed {} + pending {}",
                        s.admitted, s.served, s.quarantined, s.shed, s.pending
                    ),
                );
            }
            if s.offered != s.admitted + s.rejected {
                return violation(
                    self.name(),
                    format!(
                        "{which}: offered {} != admitted {} + rejected {}",
                        s.offered, s.admitted, s.rejected
                    ),
                );
            }
            let by_tenant: u64 = s.rejected_by_tenant.iter().sum();
            if s.rejected != by_tenant {
                return violation(
                    self.name(),
                    format!(
                        "{which}: rejected {} != per-tenant sum {}",
                        s.rejected, by_tenant
                    ),
                );
            }
            if s.breaker.len() != s.tenants {
                return violation(
                    self.name(),
                    format!(
                        "{which}: {} breaker label(s) for {} tenant(s)",
                        s.breaker.len(),
                        s.tenants
                    ),
                );
            }
            // Every terminal the harness builds comes from a run that
            // finished its plan: nothing may still be pending or
            // flagged partial.
            if s.pending != 0 || s.partial {
                return violation(
                    self.name(),
                    format!(
                        "{which}: terminal stats report pending {} / partial {}",
                        s.pending, s.partial
                    ),
                );
            }
        }
        None
    }
}

/// Every journaled guard report is internally consistent (rollbacks
/// bounded by steps, LR halvings bounded by rollbacks, finite
/// non-negative drift).
struct GuardMonotonicity;

impl Invariant for GuardMonotonicity {
    fn name(&self) -> &'static str {
        "guard-monotonicity"
    }
    fn contract(&self) -> &'static str {
        "journaled guard stats are internally consistent on every record"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        let terminals = [
            ("reference", &run.reference),
            ("faulted", run.faulted.as_ref()?),
        ];
        for (which, terminal) in terminals {
            for record in &terminal.records {
                if let Some(guard) = &record.guard {
                    if !guard.is_consistent() {
                        return violation(
                            self.name(),
                            format!(
                                "{which}: inconsistent guard stats at seq {} {:?}: \
                                 steps {} rollbacks {} lr_halvings {} drift {}",
                                record.seq,
                                record.state,
                                guard.steps,
                                guard.rollbacks,
                                guard.lr_halvings,
                                guard.final_drift
                            ),
                        );
                    }
                }
            }
        }
        None
    }
}

/// Crash recovery leaves no stranded `.tmp` siblings behind: the
/// atomic-write discipline either renames or sweeps them.
struct NoOrphanedTmp;

impl Invariant for NoOrphanedTmp {
    fn name(&self) -> &'static str {
        "no-orphaned-tmp"
    }
    fn contract(&self) -> &'static str {
        "no .tmp files survive to the terminal state"
    }
    fn check(&self, run: &RunOutcome) -> Option<Violation> {
        let terminals = [
            ("reference", &run.reference),
            ("faulted", run.faulted.as_ref()?),
        ];
        for (which, terminal) in terminals {
            for path in terminal.files.keys() {
                if path.to_string_lossy().ends_with(".tmp") {
                    return violation(
                        self.name(),
                        format!("{which}: orphaned tmp file {}", path.display()),
                    );
                }
            }
        }
        None
    }
}
