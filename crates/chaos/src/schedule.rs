//! Seeded, serializable chaos schedules.
//!
//! A [`ChaosSchedule`] is the single artifact that describes one whole
//! chaos experiment: the *workload* (a deployment environment plus a
//! multi-tenant service mix — present in the fault-free reference run
//! and the faulted run alike) and the *failures* (storage faults and
//! process deaths, each bound to one process lifetime). Schedules are
//! pure data: generated from a seed, serialized to JSON for
//! `chaos-repro.json` artifacts, and replayed bit-for-bit.

use qd_core::{CrashPoint, Fault};
use serde::{DeError, Deserialize, Serialize, Value};

/// The workload every run of a schedule executes — the environment and
/// service mix shared by the reference and faulted runs, so that the
/// only difference between the two is the injected failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Seed of the training environment (model init, data, partition,
    /// Byzantine client assignment).
    pub train_seed: u64,
    /// Dataset size for the deployment's federated training epoch.
    pub samples: usize,
    /// Federation size.
    pub clients: usize,
    /// Training-phase rounds.
    pub rounds: usize,
    /// Byzantine client fraction (`[0, 1)`): during training the full
    /// default fault menu, during serving the ascent spike (when
    /// [`Workload::ascent_spike`] > 1).
    pub byzantine_frac: f32,
    /// Per-round client dropout probability of the training network
    /// (`0.0` = loopback).
    pub net_drop: f32,
    /// Ascent-LR magnification Byzantine clients apply during serving
    /// ascents (`1.0` = no spike). A spike activates failure isolation
    /// (retry ladder + bisection) for the service run.
    pub ascent_spike: f32,
    /// Tenants submitting arrival streams.
    pub tenants: usize,
    /// Requests per tenant stream.
    pub requests: usize,
    /// Serving seed (arrival streams; independent of `train_seed`).
    pub serve_seed: u64,
    /// Breaker trip threshold (`0` = breakers off); see
    /// `qd_serve::IsolationConfig::breaker_trip`.
    pub breaker_trip: u32,
    /// Breaker cooldown units (required ≥ 1 when `breaker_trip` > 0).
    pub breaker_cooldown: u32,
    /// Relearn the first RECOVERED request after the service run — the
    /// full deploy→serve→relearn lifecycle.
    pub relearn: bool,
}

/// One storage-level fault of the non-kill family. Process deaths are
/// deliberately *not* expressible here: every kill goes through
/// [`CrashPoint`], so a schedule cannot arm two contradictory deaths
/// for one process lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The write/append applies only its first `n` bytes, then the
    /// process dies (the torn write).
    TornWrite(usize),
    /// The fsync fails without advancing durability; the process
    /// survives the syscall (and this harness treats the surfaced
    /// error as fatal to the run).
    FsyncFail,
    /// The write/append fails with `ENOSPC`, applying nothing.
    DiskFull,
}

impl StorageFault {
    /// The `qd_core` fault this arms on a `FaultFs`.
    pub fn to_fault(self) -> Fault {
        match self {
            StorageFault::TornWrite(n) => Fault::TornWrite(n),
            StorageFault::FsyncFail => Fault::FsyncFail,
            StorageFault::DiskFull => Fault::DiskFull,
        }
    }
}

impl Serialize for StorageFault {
    fn to_value(&self) -> Value {
        match *self {
            StorageFault::TornWrite(n) => {
                Value::Map(vec![("torn_write".to_string(), Serialize::to_value(&n))])
            }
            StorageFault::FsyncFail => Value::Str("fsync_fail".to_string()),
            StorageFault::DiskFull => Value::Str("disk_full".to_string()),
        }
    }
}

impl Deserialize for StorageFault {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => match s.as_str() {
                "fsync_fail" => Ok(StorageFault::FsyncFail),
                "disk_full" => Ok(StorageFault::DiskFull),
                other => Err(DeError::new(format!(
                    "unknown StorageFault variant {other:?}"
                ))),
            },
            other => {
                let n = other.field("StorageFault", "torn_write")?;
                Ok(StorageFault::TornWrite(Deserialize::from_value(n)?))
            }
        }
    }
}

/// What one injected failure does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The process dies — at a storage syscall or a journal boundary,
    /// in the unified [`CrashPoint`] vocabulary.
    Crash(CrashPoint),
    /// A non-fatal-by-construction storage fault at the 0-based `op`-th
    /// `Vfs` operation of the lifetime.
    Storage {
        /// Operation index relative to the lifetime's first syscall.
        op: u64,
        /// The fault to inject there.
        fault: StorageFault,
    },
}

impl Serialize for FaultSpec {
    fn to_value(&self) -> Value {
        match *self {
            FaultSpec::Crash(point) => {
                Value::Map(vec![("crash".to_string(), Serialize::to_value(&point))])
            }
            FaultSpec::Storage { op, fault } => Value::Map(vec![(
                "storage".to_string(),
                Value::Map(vec![
                    ("op".to_string(), Serialize::to_value(&op)),
                    ("fault".to_string(), Serialize::to_value(&fault)),
                ]),
            )]),
        }
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(point) = v.get("crash") {
            return Ok(FaultSpec::Crash(Deserialize::from_value(point)?));
        }
        if let Some(storage) = v.get("storage") {
            return Ok(FaultSpec::Storage {
                op: Deserialize::from_value(storage.field("FaultSpec::Storage", "op")?)?,
                fault: Deserialize::from_value(storage.field("FaultSpec::Storage", "fault")?)?,
            });
        }
        Err(DeError::new(
            "expected object with `crash` or `storage` for FaultSpec",
        ))
    }
}

/// One injected failure, bound to the process lifetime (attempt) it
/// fires in: attempt 0 is the initial deployment, attempt *k* is the
/// *k*-th resume after a death.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// The process lifetime this failure arms in.
    pub attempt: u32,
    /// What happens.
    pub spec: FaultSpec,
}

/// A complete chaos experiment: workload + failures + resume budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// The seed this schedule was generated from (provenance only; the
    /// schedule itself is self-contained).
    pub seed: u64,
    /// The shared workload.
    pub workload: Workload,
    /// The injected failures.
    pub faults: Vec<InjectedFault>,
    /// Resumes allowed before the run counts as stalled (the liveness
    /// bound the run-completes invariant enforces).
    pub max_resumes: u32,
}

impl ChaosSchedule {
    /// Checks the schedule is well-formed: a sane workload, at most one
    /// [`CrashPoint`] per process lifetime (the unified-kill rule), and
    /// no duplicate storage-fault slots.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let w = &self.workload;
        if w.clients == 0 || w.tenants == 0 || w.requests == 0 || w.rounds == 0 {
            return Err("clients, tenants, requests and rounds must all be ≥ 1".to_string());
        }
        if w.samples < w.clients {
            return Err(format!(
                "{} samples cannot cover {} clients",
                w.samples, w.clients
            ));
        }
        if !(0.0..1.0).contains(&w.byzantine_frac) {
            return Err(format!(
                "byzantine_frac must be in [0, 1), got {}",
                w.byzantine_frac
            ));
        }
        if !(0.0..1.0).contains(&w.net_drop) {
            return Err(format!("net_drop must be in [0, 1), got {}", w.net_drop));
        }
        if !w.ascent_spike.is_finite() || w.ascent_spike < 1.0 {
            return Err(format!(
                "ascent_spike must be a finite scale ≥ 1, got {}",
                w.ascent_spike
            ));
        }
        if w.breaker_trip > 0 && w.breaker_cooldown == 0 {
            return Err("a breaker trip threshold needs a cooldown ≥ 1".to_string());
        }
        let mut crash_attempts: Vec<u32> = Vec::new();
        let mut storage_slots: Vec<(u32, u64)> = Vec::new();
        for fault in &self.faults {
            match fault.spec {
                FaultSpec::Crash(_) => {
                    if crash_attempts.contains(&fault.attempt) {
                        return Err(format!(
                            "attempt {} arms two crash points; a process dies once",
                            fault.attempt
                        ));
                    }
                    crash_attempts.push(fault.attempt);
                }
                FaultSpec::Storage { op, .. } => {
                    if storage_slots.contains(&(fault.attempt, op)) {
                        return Err(format!(
                            "attempt {} arms two storage faults at op {op}",
                            fault.attempt
                        ));
                    }
                    storage_slots.push((fault.attempt, op));
                }
            }
        }
        Ok(())
    }

    /// The failures bound to one process lifetime: the storage faults
    /// to arm (op indices relative to the lifetime's first syscall) and
    /// the at-most-one crash point.
    pub fn faults_for(&self, attempt: u32) -> (Vec<(u64, StorageFault)>, Option<CrashPoint>) {
        let mut storage = Vec::new();
        let mut crash = None;
        for fault in &self.faults {
            if fault.attempt != attempt {
                continue;
            }
            match fault.spec {
                FaultSpec::Crash(point) => crash = Some(point),
                FaultSpec::Storage { op, fault } => storage.push((op, fault)),
            }
        }
        (storage, crash)
    }

    /// Serializes the schedule as one JSON line.
    ///
    /// # Errors
    ///
    /// A description of the (exotic: non-finite float) encode failure.
    pub fn to_json(&self) -> Result<String, String> {
        let mut json = serde_json::to_string(&self.to_value()).map_err(|e| e.to_string())?;
        json.push('\n');
        Ok(json)
    }

    /// Parses a schedule from JSON and validates it.
    ///
    /// # Errors
    ///
    /// A description of the parse or validation failure.
    pub fn from_json(text: &str) -> Result<ChaosSchedule, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let schedule = ChaosSchedule::from_value(&value).map_err(|e| e.to_string())?;
        schedule.validate()?;
        Ok(schedule)
    }

    /// The deterministic schedule generator: run `run` of seed `seed`.
    ///
    /// All runs of one seed share a training environment (so a
    /// multi-run sweep trains once), vary the serving mix, and arm a
    /// contiguous prefix of lethal lifetimes — every generated schedule
    /// leaves resume headroom, so a correct system completes it and the
    /// pinned check.sh gate stays green unless an invariant regresses.
    pub fn generate(seed: u64, run: u64) -> ChaosSchedule {
        let mut stream = mix_stream(seed, run);
        // Environment knobs: a function of `seed` alone.
        let mut env = mix_stream(seed, u64::MAX);
        let byzantine_frac = 0.34;
        let net_drop = if env(2) == 0 { 0.2 } else { 0.0 };
        let workload = Workload {
            train_seed: seed,
            samples: 120,
            clients: 3,
            rounds: 3,
            byzantine_frac,
            net_drop,
            ascent_spike: if stream(2) == 0 { 1.0e6 } else { 1.0 },
            tenants: 1 + stream(2) as usize,
            requests: 2 + stream(3) as usize,
            serve_seed: stream(u64::MAX),
            breaker_trip: if stream(3) == 0 { 1 } else { 0 },
            breaker_cooldown: 2,
            relearn: stream(2) == 0,
        };
        let lethal = 1 + stream(3) as u32;
        let mut faults = Vec::new();
        for attempt in 0..lethal {
            match stream(4) {
                0 => faults.push(InjectedFault {
                    attempt,
                    spec: FaultSpec::Crash(CrashPoint::VfsOp(stream(400))),
                }),
                1 => faults.push(InjectedFault {
                    attempt,
                    spec: FaultSpec::Crash(CrashPoint::Boundary {
                        unit: stream(3) as usize,
                        boundary: boundary_from(stream(4)),
                    }),
                }),
                2 => faults.push(InjectedFault {
                    attempt,
                    spec: FaultSpec::Storage {
                        op: stream(400),
                        fault: StorageFault::TornWrite(stream(64) as usize),
                    },
                }),
                _ => faults.push(InjectedFault {
                    attempt,
                    spec: FaultSpec::Storage {
                        op: stream(400),
                        fault: if stream(2) == 0 {
                            StorageFault::FsyncFail
                        } else {
                            StorageFault::DiskFull
                        },
                    },
                }),
            }
        }
        ChaosSchedule {
            seed,
            workload,
            faults,
            max_resumes: lethal + 2,
        }
    }
}

/// A journal boundary drawn from a bounded integer. Only the plain
/// trio plus a mid-batch kill: the isolation-only boundaries fire only
/// under specific degraded mixes, and a boundary that never fires is
/// harmless (the run just completes).
fn boundary_from(draw: u64) -> qd_core::BatchPreempt {
    match draw {
        0 => qd_core::BatchPreempt::Received,
        1 => qd_core::BatchPreempt::Unlearned(1),
        2 => qd_core::BatchPreempt::Unlearned(2),
        _ => qd_core::BatchPreempt::Recovered,
    }
}

/// A splitmix64 draw stream over `(seed, lane)`: each call returns a
/// value in `[0, bound)` (`bound` of `u64::MAX` is effectively a raw
/// draw).
fn mix_stream(seed: u64, lane: u64) -> impl FnMut(u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    move |bound: u64| {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if bound == u64::MAX {
            z
        } else {
            z % bound.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_core::BatchPreempt;

    #[test]
    fn generated_schedules_validate_and_round_trip() {
        for run in 0..8 {
            let schedule = ChaosSchedule::generate(7, run);
            schedule.validate().expect("generated schedules validate");
            let json = schedule.to_json().expect("schedules encode");
            let back = ChaosSchedule::from_json(&json).expect("round trip parses");
            assert_eq!(back, schedule, "run {run} round-trips");
            assert_eq!(
                back.to_json().expect("schedules encode"),
                json,
                "run {run} JSON is stable"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(ChaosSchedule::generate(7, 3), ChaosSchedule::generate(7, 3));
        assert_ne!(
            ChaosSchedule::generate(7, 3).workload.serve_seed,
            ChaosSchedule::generate(7, 4).workload.serve_seed
        );
    }

    #[test]
    fn double_kill_in_one_lifetime_is_rejected() {
        let mut schedule = ChaosSchedule::generate(1, 0);
        schedule.faults = vec![
            InjectedFault {
                attempt: 0,
                spec: FaultSpec::Crash(CrashPoint::VfsOp(3)),
            },
            InjectedFault {
                attempt: 0,
                spec: FaultSpec::Crash(CrashPoint::Boundary {
                    unit: 0,
                    boundary: BatchPreempt::Received,
                }),
            },
        ];
        let err = schedule.validate().expect_err("two kills must be rejected");
        assert!(err.contains("two crash points"), "{err}");
    }

    #[test]
    fn faults_for_partitions_by_attempt() {
        let schedule = ChaosSchedule {
            seed: 0,
            workload: ChaosSchedule::generate(0, 0).workload,
            faults: vec![
                InjectedFault {
                    attempt: 0,
                    spec: FaultSpec::Storage {
                        op: 5,
                        fault: StorageFault::FsyncFail,
                    },
                },
                InjectedFault {
                    attempt: 1,
                    spec: FaultSpec::Crash(CrashPoint::VfsOp(9)),
                },
            ],
            max_resumes: 3,
        };
        let (storage, crash) = schedule.faults_for(0);
        assert_eq!(storage, vec![(5, StorageFault::FsyncFail)]);
        assert!(crash.is_none());
        let (storage, crash) = schedule.faults_for(1);
        assert!(storage.is_empty());
        assert_eq!(crash, Some(CrashPoint::VfsOp(9)));
    }
}
