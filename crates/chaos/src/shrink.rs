//! Automatic schedule shrinking: reduce a violating schedule to a
//! minimal reproducer.
//!
//! Greedy fixpoint reduction: propose candidate schedules in a fixed
//! deterministic order — drop one fault, halve one intensity, truncate
//! one workload dimension — re-run each through the [`Harness`], and
//! accept the first candidate that still trips the *same invariant*.
//! Repeat until a full pass accepts nothing. Every reduction strictly
//! decreases a finite measure (fault count, op indices, workload
//! sizes), so the loop terminates.

use crate::invariant::Violation;
use crate::scenario::{ChaosError, Harness};
use crate::schedule::{ChaosSchedule, FaultSpec, StorageFault};
use qd_core::CrashPoint;
use serde::{DeError, Deserialize, Serialize, Value};

/// A minimal reproducer: the shrunk schedule plus the violation it
/// deterministically re-triggers — the content of `chaos-repro.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The shrunk (or original, when nothing shrank) schedule.
    pub schedule: ChaosSchedule,
    /// The violation replaying the schedule must reproduce
    /// byte-for-byte.
    pub violation: Violation,
}

impl Serialize for Repro {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("schedule".to_string(), self.schedule.to_value()),
            ("violation".to_string(), self.violation.to_value()),
        ])
    }
}

impl Deserialize for Repro {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Repro {
            schedule: Deserialize::from_value(v.field("Repro", "schedule")?)?,
            violation: Deserialize::from_value(v.field("Repro", "violation")?)?,
        })
    }
}

impl Repro {
    /// Serializes the reproducer as one JSON line.
    ///
    /// # Errors
    ///
    /// A description of the (exotic: non-finite float) encode failure.
    pub fn to_json(&self) -> Result<String, String> {
        let mut json = serde_json::to_string(&self.to_value()).map_err(|e| e.to_string())?;
        json.push('\n');
        Ok(json)
    }

    /// Parses a reproducer and validates its schedule.
    ///
    /// # Errors
    ///
    /// A description of the parse or validation failure.
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let repro = Repro::from_value(&value).map_err(|e| e.to_string())?;
        repro.schedule.validate()?;
        Ok(repro)
    }
}

/// Shrinks `schedule` to a minimal schedule still tripping the same
/// invariant as `violation`, re-running candidates on `harness`.
/// Returns the reproducer holding the final schedule and the violation
/// it produced (whose detail may legitimately differ from the original
/// — a smaller schedule stalls earlier, diverges at a different seq —
/// but whose invariant name is pinned).
///
/// # Errors
///
/// [`ChaosError`] when the starting schedule no longer reproduces any
/// violation of the same invariant (a flaky violation is itself a
/// determinism bug worth surfacing loudly).
pub fn shrink(
    harness: &mut Harness,
    schedule: &ChaosSchedule,
    violation: &Violation,
) -> Result<Repro, ChaosError> {
    let mut current = schedule.clone();
    let mut current_violation =
        reproduce(harness, &current, &violation.invariant)?.ok_or_else(|| {
            ChaosError(format!(
                "shrink starting point does not reproduce {}: nondeterministic violation",
                violation.invariant
            ))
        })?;
    loop {
        let mut reduced = false;
        for candidate in candidates(&current) {
            if candidate == current {
                continue;
            }
            if candidate.validate().is_err() {
                continue;
            }
            if let Some(v) = reproduce(harness, &candidate, &violation.invariant)? {
                current = candidate;
                current_violation = v;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return Ok(Repro {
                schedule: current,
                violation: current_violation,
            });
        }
    }
}

/// Runs `schedule` and returns its first violation of `invariant`, if
/// any.
fn reproduce(
    harness: &mut Harness,
    schedule: &ChaosSchedule,
    invariant: &str,
) -> Result<Option<Violation>, ChaosError> {
    let report = harness.run(schedule)?;
    Ok(report
        .violations
        .into_iter()
        .find(|v| v.invariant == invariant))
}

/// Candidate reductions of `schedule`, most aggressive first: drop a
/// fault entirely, then halve fault intensities, then truncate the
/// workload, then tighten the resume budget.
fn candidates(schedule: &ChaosSchedule) -> Vec<ChaosSchedule> {
    let mut out = Vec::new();
    // Drop each fault.
    for i in 0..schedule.faults.len() {
        let mut c = schedule.clone();
        c.faults.remove(i);
        out.push(c);
    }
    // Halve each fault's intensity.
    for i in 0..schedule.faults.len() {
        let mut c = schedule.clone();
        if let Some(fault) = c.faults.get_mut(i) {
            fault.spec = match fault.spec {
                FaultSpec::Crash(CrashPoint::VfsOp(op)) => {
                    FaultSpec::Crash(CrashPoint::VfsOp(op / 2))
                }
                FaultSpec::Crash(CrashPoint::Boundary { unit, boundary }) => {
                    FaultSpec::Crash(CrashPoint::Boundary {
                        unit: unit / 2,
                        boundary,
                    })
                }
                FaultSpec::Storage { op, fault } => FaultSpec::Storage {
                    op: op / 2,
                    fault: match fault {
                        StorageFault::TornWrite(n) => StorageFault::TornWrite(n / 2),
                        other => other,
                    },
                },
            };
        }
        out.push(c);
    }
    // Truncate the workload, one knob at a time.
    let w = &schedule.workload;
    if w.requests > 1 {
        let mut c = schedule.clone();
        c.workload.requests = w.requests / 2;
        out.push(c);
    }
    if w.tenants > 1 {
        let mut c = schedule.clone();
        c.workload.tenants = 1;
        out.push(c);
    }
    if w.relearn {
        let mut c = schedule.clone();
        c.workload.relearn = false;
        out.push(c);
    }
    if w.ascent_spike > 1.0 {
        let mut c = schedule.clone();
        c.workload.ascent_spike = 1.0;
        out.push(c);
    }
    if w.net_drop > 0.0 {
        let mut c = schedule.clone();
        c.workload.net_drop = 0.0;
        out.push(c);
    }
    if w.byzantine_frac > 0.0 {
        let mut c = schedule.clone();
        c.workload.byzantine_frac = 0.0;
        // A spike without Byzantine clients is inert; drop it too so
        // the pair shrinks as one step.
        c.workload.ascent_spike = 1.0;
        out.push(c);
    }
    if w.breaker_trip > 0 {
        let mut c = schedule.clone();
        c.workload.breaker_trip = 0;
        out.push(c);
    }
    if w.rounds > 1 {
        let mut c = schedule.clone();
        c.workload.rounds = w.rounds / 2;
        out.push(c);
    }
    // Deliberately NOT a candidate: halving `max_resumes`. A tighter
    // resume budget can manufacture a stall that the original system
    // never exhibited, turning a real liveness reproducer into a
    // trivial budget artifact.
    out
}
