//! qd-chaos: whole-system deterministic fault orchestration.
//!
//! A FoundationDB-style simulation harness over the whole QuickDrop
//! stack. One seeded, serializable [`ChaosSchedule`] composes faults
//! across every layer — a lossy training network, Byzantine clients
//! (training poison and serving ascent spikes), storage faults, and
//! process deaths at storage syscalls or journal boundaries — over a
//! single deploy → serve → crash → resume → relearn run. After every
//! run a pluggable [`Invariant`] registry checks the terminal state:
//! journal frontier consistency, bit-for-bit kill-and-resume
//! equivalence against a fault-free reference, `ServeStats` accounting
//! identities, guard monotonicity, and no orphaned tmp files. When an
//! invariant trips, [`shrink`](shrink::shrink) reduces the schedule to
//! a minimal reproducer serialized as `chaos-repro.json`, which
//! `qd chaos --replay` re-executes deterministically.
//!
//! The core discipline is the *environment vs failures* split: the
//! workload half of a schedule (training mix, serving traffic, spikes)
//! runs in both the reference and the faulted run; the failure half
//! (storage faults, crash points) runs only in the faulted run. Any
//! divergence between the two terminal states is therefore a crash-
//! recovery bug, not workload noise.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod invariant;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use invariant::{registry, Invariant, Violation};
pub use scenario::{ChaosError, Harness, RunOutcome, RunReport, Terminal};
pub use schedule::{ChaosSchedule, FaultSpec, InjectedFault, StorageFault, Workload};
pub use shrink::{shrink, Repro};
