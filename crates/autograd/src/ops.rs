//! Vector–Jacobian products for every tape op.
//!
//! Each rule *emits ordinary tape ops*, so the gradient of a gradient is
//! available by construction. Rules for linear ops are their adjoints
//! (`im2col` ↔ `col2im`, pool ↔ unpool, sum ↔ broadcast, permutes), which
//! the test-suite verifies by inner-product identities and finite
//! differences.

use crate::tape::{Op, PoolGeo, Tape};
use crate::Var;

impl Tape {
    /// Returns `(input, contribution)` pairs for the node `node` (whose
    /// recorded op is `op`) given the upstream adjoint `u`.
    ///
    /// Every contribution is shaped exactly like its input so that adjoint
    /// accumulation is a plain elementwise add.
    pub(crate) fn vjp(&mut self, node: Var, op: &Op, u: Var) -> Vec<(Var, Var)> {
        match *op {
            Op::Leaf | Op::Constant | Op::ReluMask => Vec::new(),
            Op::Add(a, b) => vec![(a, u), (b, u)],
            Op::Sub(a, b) => {
                let nb = self.neg(u);
                vec![(a, u), (b, nb)]
            }
            Op::Mul(a, b) => {
                let da = self.mul(u, b);
                let db = self.mul(u, a);
                vec![(a, da), (b, db)]
            }
            Op::Div(a, b) => {
                // y = a / b; da = u / b; db = -u * y / b.
                let da = self.div(u, b);
                let y_over_b = self.div(node, b);
                let ub = self.mul(u, y_over_b);
                let db = self.neg(ub);
                vec![(a, da), (b, db)]
            }
            Op::Neg(a) => {
                let da = self.neg(u);
                vec![(a, da)]
            }
            Op::Scale(a, s) => {
                let da = self.scale(u, s);
                vec![(a, da)]
            }
            Op::AddScalar(a) => vec![(a, u)],
            Op::MatMul(a, b) => {
                let bt = self.transpose2(b);
                let da = self.matmul(u, bt);
                let at = self.transpose2(a);
                let db = self.matmul(at, u);
                vec![(a, da), (b, db)]
            }
            Op::Transpose2(a) => {
                let da = self.transpose2(u);
                vec![(a, da)]
            }
            Op::Relu(a) => {
                // d relu(x)/dx = 1[x > 0]; the mask is locally constant.
                let mask = self.relu_mask(a);
                let da = self.mul(u, mask);
                vec![(a, da)]
            }
            Op::Tanh(a) => {
                // y = tanh(x); dy/dx = 1 - y².
                let y2 = self.mul(node, node);
                let neg = self.neg(y2);
                let one_minus = self.add_scalar(neg, 1.0);
                let da = self.mul(u, one_minus);
                vec![(a, da)]
            }
            Op::Sigmoid(a) => {
                // y = σ(x); dy/dx = y (1 - y).
                let neg = self.neg(node);
                let one_minus = self.add_scalar(neg, 1.0);
                let deriv = self.mul(node, one_minus);
                let da = self.mul(u, deriv);
                vec![(a, da)]
            }
            Op::MaxPool(a, geo) => {
                let da = self.max_unpool_scatter(a, u, geo);
                vec![(a, da)]
            }
            Op::MaxUnpoolMask => Vec::new(),
            Op::Sqrt(a) => {
                // y = sqrt(a); da = u / (2 y).
                let half_u = self.scale(u, 0.5);
                let da = self.div(half_u, node);
                vec![(a, da)]
            }
            Op::Exp(a) => {
                let da = self.mul(u, node);
                vec![(a, da)]
            }
            Op::Ln(a) => {
                let da = self.div(u, a);
                vec![(a, da)]
            }
            Op::SumAll(a) => {
                let dims = self.value(a).dims().to_vec();
                let da = self.broadcast_to(u, &dims);
                vec![(a, da)]
            }
            Op::BroadcastTo(a) => {
                let s = self.sum_all(u);
                let da = self.reshape_like(s, a);
                vec![(a, da)]
            }
            Op::SumRows(a) => {
                let m = self.value(a).dims()[0];
                let da = self.broadcast_rows(u, m);
                vec![(a, da)]
            }
            Op::BroadcastRows(a) => {
                let da = self.sum_rows(u);
                vec![(a, da)]
            }
            Op::SumCols(a) => {
                let n = self.value(a).dims()[1];
                let da = self.broadcast_cols(u, n);
                vec![(a, da)]
            }
            Op::BroadcastCols(a) => {
                let da = self.sum_cols(u);
                vec![(a, da)]
            }
            Op::Reshape(a) => {
                let da = self.reshape_like(u, a);
                vec![(a, da)]
            }
            Op::Im2col(a, geo) => {
                let folded = self.col2im(u, geo);
                let da = self.reshape_like(folded, a);
                vec![(a, da)]
            }
            Op::Col2im(a, geo) => {
                let cols = self.im2col(u, geo);
                let da = self.reshape_like(cols, a);
                vec![(a, da)]
            }
            Op::AvgPool(a, PoolGeo { c, h, w, k }) => {
                let up = self.avg_unpool2d(u, c, h / k, w / k, k);
                let da = self.reshape_like(up, a);
                vec![(a, da)]
            }
            Op::AvgUnpool(a, PoolGeo { c, h, w, k }) => {
                // Forward input was (N, C, h, w) with output (N, C, h*k, w*k).
                let down = self.avg_pool2d(u, c, h * k, w * k, k);
                let da = self.reshape_like(down, a);
                vec![(a, da)]
            }
            Op::RowsToNchw(a, [n, c, oh, ow]) => {
                let rows = self.nchw_to_rows(u, n, c, oh, ow);
                let da = self.reshape_like(rows, a);
                vec![(a, da)]
            }
            Op::NchwToRows(a, [n, c, oh, ow]) => {
                let img = self.rows_to_nchw(u, n, c, oh, ow);
                let da = self.reshape_like(img, a);
                vec![(a, da)]
            }
            Op::SpatialSum(a, [c, h, w]) => {
                let bc = self.spatial_broadcast(u, c, h, w);
                let da = self.reshape_like(bc, a);
                vec![(a, da)]
            }
            Op::SpatialBroadcast(a, [c, h, w]) => {
                let s = self.spatial_sum(u, c, h, w);
                let da = self.reshape_like(s, a);
                vec![(a, da)]
            }
            Op::ChannelSum(a, [c, h, w]) => {
                let n = self.value(a).len() / (c * h * w);
                let bc = self.channel_broadcast(u, n, h, w);
                let da = self.reshape_like(bc, a);
                vec![(a, da)]
            }
            Op::ChannelBroadcast(a, [_, c, h, w]) => {
                let s = self.channel_sum(u, c, h, w);
                let da = self.reshape_like(s, a);
                vec![(a, da)]
            }
            Op::LogSoftmax(a) => {
                // y = log_softmax(x); da = u - softmax(x) * rowsum(u).
                let n = self.value(a).dims()[1];
                let soft = self.exp(node);
                let row = self.sum_cols(u);
                let bc = self.broadcast_cols(row, n);
                let sub = self.mul(soft, bc);
                let da = self.sub(u, sub);
                vec![(a, da)]
            }
        }
    }

    /// Reshapes `v` to the dims of `like` if they differ (no-op otherwise).
    fn reshape_like(&mut self, v: Var, like: Var) -> Var {
        let want = self.value(like).dims().to_vec();
        if self.value(v).dims() == want.as_slice() {
            v
        } else {
            self.reshape(v, &want)
        }
    }
}
