//! The tape: eager op recording plus gradient construction.

use crate::kernels;
use qd_tensor::{avg_pool2d, avg_unpool2d, col2im, im2col, Conv2dGeometry, Tensor};

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index; it is only meaningful together with the tape
/// that produced it. Using a `Var` with a different tape yields unspecified
/// values or panics, like indexing into the wrong arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node index inside the owning tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Geometry of a non-overlapping average pool recorded on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PoolGeo {
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub k: usize,
}

#[derive(Debug, Clone)]
pub(crate) enum Op {
    Leaf,
    Constant,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    Transpose2(Var),
    Relu(Var),
    ReluMask,
    Tanh(Var),
    Sigmoid(Var),
    MaxPool(Var, PoolGeo),
    MaxUnpoolMask,
    Sqrt(Var),
    Exp(Var),
    Ln(Var),
    SumAll(Var),
    BroadcastTo(Var),
    SumRows(Var),
    BroadcastRows(Var),
    SumCols(Var),
    BroadcastCols(Var),
    Reshape(Var),
    Im2col(Var, Conv2dGeometry),
    Col2im(Var, Conv2dGeometry),
    AvgPool(Var, PoolGeo),
    AvgUnpool(Var, PoolGeo),
    RowsToNchw(Var, [usize; 4]),
    NchwToRows(Var, [usize; 4]),
    SpatialSum(Var, [usize; 3]),
    SpatialBroadcast(Var, [usize; 3]),
    ChannelSum(Var, [usize; 3]),
    ChannelBroadcast(Var, [usize; 4]),
    LogSoftmax(Var),
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub needs_grad: bool,
}

/// An eager autodiff tape.
///
/// Construct values with [`Tape::leaf`] (differentiable) or
/// [`Tape::constant`] (treated as fixed), combine them with the op methods,
/// and differentiate with [`Tape::grad`]. Because `grad` emits ordinary
/// nodes, it can be nested for higher-order derivatives.
///
/// A tape only grows; for iterative training, create a fresh tape per step
/// and re-insert parameters as leaves.
///
/// # Examples
///
/// ```
/// use qd_autograd::Tape;
/// use qd_tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let w = tape.leaf(Tensor::from_vec(vec![1.0, -2.0], &[1, 2]));
/// let x = tape.constant(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]));
/// let y = tape.matmul(w, x); // 1*3 + -2*4 = -5
/// let loss = tape.sum_all(y);
/// let grads = tape.grad(loss, &[w]);
/// assert_eq!(tape.value(grads[0]).data(), &[3.0, 4.0]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The computed value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Inserts a differentiable leaf (e.g. a model parameter or a synthetic
    /// sample being optimized).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Inserts a non-differentiable constant (e.g. input data or labels).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant, false)
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn push_unary(&mut self, a: Var, value: Tensor, op: Op) -> Var {
        let needs = self.nodes[a.0].needs_grad;
        self.push(value, op, needs)
    }

    fn push_binary(&mut self, a: Var, b: Var, value: Tensor, op: Op) -> Var {
        let needs = self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad;
        self.push(value, op, needs)
    }

    /// Elementwise sum of two same-shaped variables.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push_binary(a, b, v, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push_binary(a, b, v, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push_binary(a, b, v, Op::Mul(a, b))
    }

    /// Elementwise quotient `a / b`.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).div(self.value(b));
        self.push_binary(a, b, v, Op::Div(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).scale(-1.0);
        self.push_unary(a, v, Op::Neg(a))
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push_unary(a, v, Op::Scale(a, s))
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).add_scalar(s);
        self.push_unary(a, v, Op::AddScalar(a))
    }

    /// Matrix product of two rank-2 variables.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push_binary(a, b, v, Op::MatMul(a, b))
    }

    /// Transpose of a rank-2 variable.
    pub fn transpose2(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose2();
        self.push_unary(a, v, Op::Transpose2(a))
    }

    /// Rectified linear unit, elementwise `max(0, x)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push_unary(a, v, Op::Relu(a))
    }

    /// The 0/1 activation mask of `relu(a)`. Treated as locally constant:
    /// gradients do not flow through the mask (the second derivative of
    /// ReLU is zero almost everywhere).
    pub fn relu_mask(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        // Deliberately needs_grad = false.
        self.push(v, Op::ReluMask, false)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push_unary(a, v, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push_unary(a, v, Op::Sigmoid(a))
    }

    /// Non-overlapping max pooling over an `(N, C, H, W)` variable.
    ///
    /// The selection mask is treated as locally constant (like the ReLU
    /// mask), so gradients route to the argmax positions only; second
    /// derivatives through the selection are zero almost everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is not divisible by `k`.
    pub fn max_pool2d(&mut self, a: Var, c: usize, h: usize, w: usize, k: usize) -> Var {
        assert!(
            k > 0 && h.is_multiple_of(k) && w.is_multiple_of(k),
            "pooling {h}x{w} by {k}"
        );
        let x = self.value(a);
        let per_image = c * h * w;
        assert!(
            per_image > 0 && x.len().is_multiple_of(per_image),
            "input is not a whole number of {c}x{h}x{w} images"
        );
        let n = x.len() / per_image;
        let (oh, ow) = (h / k, w / k);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        for b in 0..n {
            for ch in 0..c {
                let src = &x.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let base = (b * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..k {
                            for kx in 0..k {
                                best = best.max(src[(oy * k + ky) * w + ox * k + kx]);
                            }
                        }
                        out[base + oy * ow + ox] = best;
                    }
                }
            }
        }
        let v = Tensor::from_vec(out, &[n, c, oh, ow]);
        self.push_unary(a, v, Op::MaxPool(a, PoolGeo { c, h, w, k }))
    }

    /// Scatters a pooled adjoint back to the argmax positions of the
    /// original input (ties send the gradient to the first maximum). The
    /// resulting node is treated as locally constant with respect to its
    /// inputs, mirroring [`Tape::relu_mask`].
    pub(crate) fn max_unpool_scatter(&mut self, input: Var, upstream: Var, geo: PoolGeo) -> Var {
        let PoolGeo { c, h, w, k } = geo;
        let x = self.value(input).clone();
        let u = self.value(upstream);
        let per_image = c * h * w;
        let n = x.len() / per_image;
        let (oh, ow) = (h / k, w / k);
        let mut out = vec![0.0f32; x.len()];
        for b in 0..n {
            for ch in 0..c {
                let src = &x.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let dst = &mut out[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                let ubase = (b * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = (f32::NEG_INFINITY, 0usize);
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = (oy * k + ky) * w + ox * k + kx;
                                if src[idx] > best.0 {
                                    best = (src[idx], idx);
                                }
                            }
                        }
                        dst[best.1] += u.data()[ubase + oy * ow + ox];
                    }
                }
            }
        }
        let dims = self.value(input).dims().to_vec();
        let v = Tensor::from_vec(out, &dims);
        // Like ReluMask: a function of (input, upstream) whose derivative
        // w.r.t. the *selection* is zero a.e.; upstream linearity is
        // handled by first-order use only.
        self.push(v, Op::MaxUnpoolMask, false)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::sqrt);
        self.push_unary(a, v, Op::Sqrt(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push_unary(a, v, Op::Exp(a))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::ln);
        self.push_unary(a, v, Op::Ln(a))
    }

    /// Sum of all elements, yielding a scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        self.push_unary(a, v, Op::SumAll(a))
    }

    /// Mean of all elements, yielding a scalar (composite of
    /// [`Tape::sum_all`] and [`Tape::scale`]).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).len().max(1);
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n as f32)
    }

    /// Broadcasts a scalar variable to `shape`.
    pub fn broadcast_to(&mut self, a: Var, shape: &[usize]) -> Var {
        assert_eq!(self.value(a).len(), 1, "broadcast_to expects a scalar");
        let v = Tensor::full(shape, self.value(a).item());
        self.push_unary(a, v, Op::BroadcastTo(a))
    }

    /// Sums a matrix over rows: `(m, n) -> (n,)`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_rows();
        self.push_unary(a, v, Op::SumRows(a))
    }

    /// Repeats a vector `(n,)` as `m` rows: `-> (m, n)`.
    pub fn broadcast_rows(&mut self, a: Var, m: usize) -> Var {
        let val = self.value(a);
        assert_eq!(val.shape().rank(), 1, "broadcast_rows expects a vector");
        let n = val.len();
        let mut data = Vec::with_capacity(m * n);
        for _ in 0..m {
            data.extend_from_slice(val.data());
        }
        let v = Tensor::from_vec(data, &[m, n]);
        self.push_unary(a, v, Op::BroadcastRows(a))
    }

    /// Sums a matrix over columns: `(m, n) -> (m,)`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_cols();
        self.push_unary(a, v, Op::SumCols(a))
    }

    /// Repeats a vector `(m,)` as `n` columns: `-> (m, n)`.
    pub fn broadcast_cols(&mut self, a: Var, n: usize) -> Var {
        let val = self.value(a);
        assert_eq!(val.shape().rank(), 1, "broadcast_cols expects a vector");
        let m = val.len();
        let mut data = Vec::with_capacity(m * n);
        for &x in val.data() {
            data.extend(std::iter::repeat_n(x, n));
        }
        let v = Tensor::from_vec(data, &[m, n]);
        self.push_unary(a, v, Op::BroadcastCols(a))
    }

    /// Reinterprets a variable with a new shape (same element count).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.value(a).reshape(shape);
        self.push_unary(a, v, Op::Reshape(a))
    }

    /// Unfolds an image batch into convolution patch rows; see
    /// [`qd_tensor::im2col`].
    pub fn im2col(&mut self, a: Var, geo: Conv2dGeometry) -> Var {
        let v = im2col(self.value(a), &geo);
        self.push_unary(a, v, Op::Im2col(a, geo))
    }

    /// Folds patch rows back into an image batch; see
    /// [`qd_tensor::col2im`].
    pub fn col2im(&mut self, a: Var, geo: Conv2dGeometry) -> Var {
        let v = col2im(self.value(a), &geo);
        self.push_unary(a, v, Op::Col2im(a, geo))
    }

    /// Non-overlapping average pooling over an `(N, C, H, W)` variable.
    pub fn avg_pool2d(&mut self, a: Var, c: usize, h: usize, w: usize, k: usize) -> Var {
        let v = avg_pool2d(self.value(a), c, h, w, k);
        self.push_unary(a, v, Op::AvgPool(a, PoolGeo { c, h, w, k }))
    }

    /// Adjoint of [`Tape::avg_pool2d`]; input is `(N, C, OH, OW)`.
    pub fn avg_unpool2d(&mut self, a: Var, c: usize, oh: usize, ow: usize, k: usize) -> Var {
        let v = avg_unpool2d(self.value(a), c, oh, ow, k);
        self.push_unary(a, v, Op::AvgUnpool(a, PoolGeo { c, h: oh, w: ow, k }))
    }

    /// Permutes conv output rows `(N*OH*OW, C)` into `(N, C, OH, OW)`.
    pub fn rows_to_nchw(&mut self, a: Var, n: usize, c: usize, oh: usize, ow: usize) -> Var {
        let v = kernels::rows_to_nchw(self.value(a), n, c, oh, ow);
        self.push_unary(a, v, Op::RowsToNchw(a, [n, c, oh, ow]))
    }

    /// Permutes `(N, C, OH, OW)` into rows `(N*OH*OW, C)`.
    pub fn nchw_to_rows(&mut self, a: Var, n: usize, c: usize, oh: usize, ow: usize) -> Var {
        let v = kernels::nchw_to_rows(self.value(a), n, c, oh, ow);
        self.push_unary(a, v, Op::NchwToRows(a, [n, c, oh, ow]))
    }

    /// Sums each `(n, c)` plane over its spatial extent:
    /// `(N, C, H, W) -> (N*C,)`.
    pub fn spatial_sum(&mut self, a: Var, c: usize, h: usize, w: usize) -> Var {
        let v = kernels::spatial_sum(self.value(a), c, h, w);
        self.push_unary(a, v, Op::SpatialSum(a, [c, h, w]))
    }

    /// Replicates a per-plane vector `(N*C,)` over spatial positions:
    /// `-> (N, C, H, W)`.
    pub fn spatial_broadcast(&mut self, a: Var, c: usize, h: usize, w: usize) -> Var {
        let v = kernels::spatial_broadcast(self.value(a), c, h, w);
        self.push_unary(a, v, Op::SpatialBroadcast(a, [c, h, w]))
    }

    /// Sums an `(N, C, H, W)` variable over batch and spatial axes:
    /// `-> (C,)`.
    pub fn channel_sum(&mut self, a: Var, c: usize, h: usize, w: usize) -> Var {
        let v = kernels::channel_sum(self.value(a), c, h, w);
        self.push_unary(a, v, Op::ChannelSum(a, [c, h, w]))
    }

    /// Replicates a per-channel vector `(C,)` over batch and spatial axes:
    /// `-> (N, C, H, W)`.
    pub fn channel_broadcast(&mut self, a: Var, n: usize, h: usize, w: usize) -> Var {
        let c = self.value(a).len();
        let v = kernels::channel_broadcast(self.value(a), n, h, w);
        self.push_unary(a, v, Op::ChannelBroadcast(a, [n, c, h, w]))
    }

    /// Numerically-stable row-wise log-softmax of a rank-2 variable.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let v = self.value(a).log_softmax_rows();
        self.push_unary(a, v, Op::LogSoftmax(a))
    }

    /// Builds the gradients of scalar `y` with respect to each variable in
    /// `xs`, **as new differentiable nodes** on this tape.
    ///
    /// Variables in `xs` that `y` does not depend on receive zero tensors.
    /// Applying `grad` to one of the returned variables yields exact
    /// second-order derivatives.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not a single-element variable.
    pub fn grad(&mut self, y: Var, xs: &[Var]) -> Vec<Var> {
        assert_eq!(
            self.value(y).len(),
            1,
            "grad target must be scalar, got shape {}",
            self.value(y).shape()
        );
        let horizon = y.0 + 1;
        let mut adjoint: Vec<Option<Var>> = vec![None; horizon];
        let seed = self.constant(Tensor::ones(self.value(y).dims()));
        adjoint[y.0] = Some(seed);
        for id in (0..horizon).rev() {
            let Some(upstream) = adjoint[id] else {
                continue;
            };
            if !self.nodes[id].needs_grad {
                continue;
            }
            let op = self.nodes[id].op.clone();
            for (input, contribution) in self.vjp(Var(id), &op, upstream) {
                if input.0 >= horizon || !self.nodes[input.0].needs_grad {
                    continue;
                }
                adjoint[input.0] = Some(match adjoint[input.0] {
                    Some(acc) => self.add(acc, contribution),
                    None => contribution,
                });
            }
        }
        xs.iter()
            .map(|x| {
                adjoint
                    .get(x.0)
                    .copied()
                    .flatten()
                    .unwrap_or_else(|| self.constant(Tensor::zeros(self.value(*x).dims())))
            })
            .collect()
    }
}
