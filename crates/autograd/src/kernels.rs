//! Private layout kernels used by the tape ops: NCHW permutes and
//! spatial/channel reductions with their adjoint broadcasts.

use qd_tensor::Tensor;

/// Permutes a patch-row matrix `(N*OH*OW, C)` into an `(N, C, OH, OW)`
/// feature map. Inverse (and adjoint) of [`nchw_to_rows`].
pub(crate) fn rows_to_nchw(rows: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    assert_eq!(rows.dims(), &[n * oh * ow, c], "rows_to_nchw shape");
    let data = rows.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let hw = oh * ow;
    for b in 0..n {
        for p in 0..hw {
            let row = &data[(b * hw + p) * c..(b * hw + p + 1) * c];
            for (ch, &v) in row.iter().enumerate() {
                out[(b * c + ch) * hw + p] = v;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Permutes an `(N, C, OH, OW)` feature map into patch rows
/// `(N*OH*OW, C)`. Inverse (and adjoint) of [`rows_to_nchw`].
pub(crate) fn nchw_to_rows(x: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    assert_eq!(x.len(), n * c * oh * ow, "nchw_to_rows length");
    let data = x.data();
    let hw = oh * ow;
    let mut out = vec![0.0f32; n * hw * c];
    for b in 0..n {
        for ch in 0..c {
            let src = &data[(b * c + ch) * hw..(b * c + ch + 1) * hw];
            for (p, &v) in src.iter().enumerate() {
                out[(b * hw + p) * c + ch] = v;
            }
        }
    }
    Tensor::from_vec(out, &[n * hw, c])
}

/// Sums each `(n, c)` plane over its spatial extent:
/// `(N, C, H, W) -> (N*C,)`.
pub(crate) fn spatial_sum(x: &Tensor, c: usize, h: usize, w: usize) -> Tensor {
    let hw = h * w;
    let planes = x.len() / hw;
    assert_eq!(x.len(), planes * hw, "spatial_sum length");
    assert_eq!(planes % c, 0, "spatial_sum channel mismatch");
    let data = x.data();
    let out = (0..planes)
        .map(|p| data[p * hw..(p + 1) * hw].iter().sum())
        .collect();
    Tensor::from_vec(out, &[planes])
}

/// Replicates a per-plane vector `(N*C,)` over the spatial extent:
/// adjoint of [`spatial_sum`].
pub(crate) fn spatial_broadcast(v: &Tensor, c: usize, h: usize, w: usize) -> Tensor {
    let planes = v.len();
    assert_eq!(planes % c, 0, "spatial_broadcast channel mismatch");
    let n = planes / c;
    let hw = h * w;
    let mut out = vec![0.0f32; planes * hw];
    for (p, &val) in v.data().iter().enumerate() {
        out[p * hw..(p + 1) * hw].fill(val);
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Sums an `(N, C, H, W)` tensor over batch and spatial axes: `-> (C,)`.
pub(crate) fn channel_sum(x: &Tensor, c: usize, h: usize, w: usize) -> Tensor {
    let hw = h * w;
    assert_eq!(x.len() % (c * hw), 0, "channel_sum length");
    let n = x.len() / (c * hw);
    let data = x.data();
    let mut out = vec![0.0f32; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            *o += data[(b * c + ch) * hw..(b * c + ch + 1) * hw]
                .iter()
                .sum::<f32>();
        }
    }
    Tensor::from_vec(out, &[c])
}

/// Replicates a per-channel vector `(C,)` over batch and spatial axes:
/// adjoint of [`channel_sum`].
pub(crate) fn channel_broadcast(v: &Tensor, n: usize, h: usize, w: usize) -> Tensor {
    let c = v.len();
    let hw = h * w;
    let mut out = vec![0.0f32; n * c * hw];
    for b in 0..n {
        for (ch, &val) in v.data().iter().enumerate() {
            out[(b * c + ch) * hw..(b * c + ch + 1) * hw].fill(val);
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_tensor::rng::Rng;

    #[test]
    fn nchw_permutes_round_trip() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let rows = nchw_to_rows(&x, 2, 3, 4, 5);
        let back = rows_to_nchw(&rows, 2, 3, 4, 5);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn nchw_permutes_are_adjoint() {
        let mut rng = Rng::seed_from(2);
        let rows = Tensor::randn(&[2 * 3 * 3, 4], &mut rng);
        let y = Tensor::randn(&[2, 4, 3, 3], &mut rng);
        let lhs = rows_to_nchw(&rows, 2, 4, 3, 3).dot(&y);
        let rhs = rows.dot(&nchw_to_rows(&y, 2, 4, 3, 3));
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn spatial_pair_is_adjoint() {
        let mut rng = Rng::seed_from(3);
        let x = Tensor::randn(&[2, 3, 2, 2], &mut rng);
        let v = Tensor::randn(&[6], &mut rng);
        let lhs = spatial_sum(&x, 3, 2, 2).dot(&v);
        let rhs = x.dot(&spatial_broadcast(&v, 3, 2, 2));
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn channel_pair_is_adjoint() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(&[2, 3, 2, 2], &mut rng);
        let v = Tensor::randn(&[3], &mut rng);
        let lhs = channel_sum(&x, 3, 2, 2).dot(&v);
        let rhs = x.dot(&channel_broadcast(&v, 2, 2, 2));
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn spatial_sum_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
        assert_eq!(spatial_sum(&x, 2, 1, 2).data(), &[3.0, 7.0]);
    }

    #[test]
    fn channel_sum_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 1, 2]);
        assert_eq!(channel_sum(&x, 1, 1, 2).data(), &[10.0]);
    }
}
