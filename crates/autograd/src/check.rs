//! Finite-difference gradient checking used throughout the test-suite.

use crate::{Tape, Var};
use qd_tensor::Tensor;

/// Central-difference numerical gradient of a scalar function.
///
/// `f` maps a full set of input tensors to a scalar; the returned tensor
/// is `∂f/∂inputs[which]`, estimated with step `eps`.
pub fn numeric_grad(
    mut f: impl FnMut(&[Tensor]) -> f32,
    inputs: &[Tensor],
    which: usize,
    eps: f32,
) -> Tensor {
    let mut grad = Tensor::zeros(inputs[which].dims());
    let mut work: Vec<Tensor> = inputs.to_vec();
    for i in 0..inputs[which].len() {
        let orig = inputs[which].data()[i];
        work[which].data_mut()[i] = orig + eps;
        let up = f(&work);
        work[which].data_mut()[i] = orig - eps;
        let down = f(&work);
        work[which].data_mut()[i] = orig;
        grad.data_mut()[i] = (up - down) / (2.0 * eps);
    }
    grad
}

/// Asserts that the tape gradients of `build` match central differences.
///
/// `build` receives a fresh tape and one leaf per input tensor and must
/// return a scalar variable. Differentiable behaviour is compared at
/// tolerance `tol` (absolute, against gradients of typical magnitude ≤ 1;
/// scale your function accordingly).
///
/// # Panics
///
/// Panics (with a diagnostic) if any analytic gradient entry deviates from
/// the numerical estimate by more than `tol`.
pub fn assert_grads_close(build: impl Fn(&mut Tape, &[Var]) -> Var, inputs: &[Tensor], tol: f32) {
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let y = build(&mut tape, &vars);
    let grads = tape.grad(y, &vars);
    for (which, g) in grads.iter().enumerate() {
        let numeric = numeric_grad(
            |tensors| {
                let mut t = Tape::new();
                let vs: Vec<Var> = tensors.iter().map(|x| t.leaf(x.clone())).collect();
                let out = build(&mut t, &vs);
                t.value(out).item()
            },
            inputs,
            which,
            1e-2,
        );
        let analytic = tape.value(*g);
        let gap = analytic.max_abs_diff(&numeric);
        assert!(
            gap <= tol,
            "gradient {which} mismatch: max |analytic - numeric| = {gap} > {tol}\n\
             analytic: {analytic:?}\n numeric: {numeric:?}"
        );
    }
}
