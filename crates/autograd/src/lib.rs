//! Tape-based reverse-mode automatic differentiation with exact
//! higher-order gradients.
//!
//! # Why higher-order?
//!
//! QuickDrop's dataset distillation minimizes, with respect to the
//! *synthetic samples* `S`, a distance between two gradients:
//! `d(∇θ L(S), ∇θ L(D))`. Computing `∂/∂S` of that objective requires
//! differentiating **through** the inner gradient — a second-order
//! derivative. This crate supports that the same way PyTorch's
//! `create_graph=True` does: [`Tape::grad`] does not merely *compute*
//! adjoint values, it *emits them as new differentiable nodes* on the same
//! tape, so `grad` can be applied to its own output.
//!
//! # Design
//!
//! * Eager evaluation: every op computes its value immediately and records
//!   a node on the tape.
//! * Values are plain [`qd_tensor::Tensor`]s; model parameters live
//!   *outside* the tape and are inserted per step as leaves, which keeps
//!   federated averaging and gradient ascent as plain tensor arithmetic.
//! * Convolution is a composite of the linear pair `im2col`/`col2im` plus
//!   `matmul`, so its double-backprop falls out of the vjp rules of those
//!   primitives — no special casing.
//!
//! # Examples
//!
//! First- and second-order derivatives of `f(x) = x³` at `x = 2`:
//!
//! ```
//! use qd_autograd::Tape;
//! use qd_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::scalar(2.0));
//! let x2 = tape.mul(x, x);
//! let y = tape.mul(x2, x); // x^3
//! let dy = tape.grad(y, &[x])[0]; // 3x^2 = 12
//! let d2y = tape.grad(dy, &[x])[0]; // 6x = 12
//! assert_eq!(tape.value(dy).item(), 12.0);
//! assert_eq!(tape.value(d2y).item(), 12.0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod check;
mod kernels;
mod ops;
mod tape;

pub use tape::{Tape, Var};
