//! Finite-difference validation of every differentiable op, plus
//! second-order checks that mirror the gradient-matching pattern used by
//! QuickDrop's distillation.

use qd_autograd::check::{assert_grads_close, numeric_grad};
use qd_autograd::{Tape, Var};
use qd_tensor::rng::Rng;
use qd_tensor::{Conv2dGeometry, Tensor};

/// Random tensor with entries bounded away from ReLU/sqrt kinks.
fn smooth_randn(shape: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::randn(shape, rng).map(|v| {
        let v = v * 0.5;
        if v.abs() < 0.15 {
            v + 0.3 * v.signum() + if v == 0.0 { 0.3 } else { 0.0 }
        } else {
            v
        }
    })
}

#[test]
fn polynomial_first_and_second_derivative() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(3.0));
    let x2 = tape.mul(x, x);
    let y = tape.mul(x2, x);
    let dy = tape.grad(y, &[x])[0];
    assert!((tape.value(dy).item() - 27.0).abs() < 1e-4); // 3x² = 27
    let d2y = tape.grad(dy, &[x])[0];
    assert!((tape.value(d2y).item() - 18.0).abs() < 1e-4); // 6x = 18
    let d3y = tape.grad(d2y, &[x])[0];
    assert!((tape.value(d3y).item() - 6.0).abs() < 1e-4); // 6
}

#[test]
fn elementwise_ops_gradcheck() {
    let mut rng = Rng::seed_from(1);
    let a = smooth_randn(&[3, 4], &mut rng);
    let b = smooth_randn(&[3, 4], &mut rng).map(|v| v + 2.0f32.copysign(v)); // keep |b| large
    assert_grads_close(
        |t, vs| {
            let s = t.add(vs[0], vs[1]);
            let m = t.mul(s, vs[0]);
            let d = t.div(m, vs[1]);
            let n = t.neg(d);
            let sc = t.scale(n, 0.5);
            let sh = t.add_scalar(sc, 1.0);
            t.sum_all(sh)
        },
        &[a, b],
        1e-2,
    );
}

#[test]
fn sub_and_mean_gradcheck() {
    let mut rng = Rng::seed_from(2);
    let a = smooth_randn(&[5], &mut rng);
    let b = smooth_randn(&[5], &mut rng);
    assert_grads_close(
        |t, vs| {
            let d = t.sub(vs[0], vs[1]);
            let sq = t.mul(d, d);
            t.mean_all(sq)
        },
        &[a, b],
        1e-2,
    );
}

#[test]
fn matmul_gradcheck() {
    let mut rng = Rng::seed_from(3);
    let a = smooth_randn(&[3, 4], &mut rng);
    let b = smooth_randn(&[4, 2], &mut rng);
    assert_grads_close(
        |t, vs| {
            let y = t.matmul(vs[0], vs[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        },
        &[a, b],
        2e-2,
    );
}

#[test]
fn transpose_gradcheck() {
    let mut rng = Rng::seed_from(4);
    let a = smooth_randn(&[2, 5], &mut rng);
    assert_grads_close(
        |t, vs| {
            let at = t.transpose2(vs[0]);
            let y = t.matmul(vs[0], at);
            t.sum_all(y)
        },
        &[a],
        2e-2,
    );
}

#[test]
fn relu_gradcheck_away_from_kink() {
    let a = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0, 3.0, -1.0], &[2, 3]);
    assert_grads_close(
        |t, vs| {
            let r = t.relu(vs[0]);
            let sq = t.mul(r, r);
            t.sum_all(sq)
        },
        &[a],
        1e-2,
    );
}

#[test]
fn tanh_sigmoid_gradcheck() {
    let mut rng = Rng::seed_from(31);
    let a = smooth_randn(&[2, 4], &mut rng);
    assert_grads_close(
        |t, vs| {
            let th = t.tanh(vs[0]);
            let sg = t.sigmoid(vs[0]);
            let m = t.mul(th, sg);
            t.sum_all(m)
        },
        &[a],
        1e-2,
    );
}

#[test]
fn tanh_second_order_matches_numeric() {
    // d²/dx² of sum(tanh(x)) = -2 tanh(x)(1 - tanh²(x)).
    let mut tape = Tape::new();
    let x0 = 0.7f32;
    let x = tape.leaf(Tensor::scalar(x0));
    let y = tape.tanh(x);
    let g = tape.grad(y, &[x])[0];
    let h = tape.grad(g, &[x])[0];
    let t = x0.tanh();
    let expected = -2.0 * t * (1.0 - t * t);
    assert!((tape.value(h).item() - expected).abs() < 1e-4);
}

#[test]
fn max_pool_forwards_and_routes_gradients_to_argmax() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_vec(
        vec![1.0, 5.0, 3.0, 2.0, -1.0, -7.0, 0.0, -2.0],
        &[1, 2, 2, 2],
    ));
    let p = tape.max_pool2d(x, 2, 2, 2, 2);
    assert_eq!(tape.value(p).data(), &[5.0, 0.0]);
    let s = tape.sum_all(p);
    let g = tape.grad(s, &[x])[0];
    assert_eq!(
        tape.value(g).data(),
        &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0]
    );
}

#[test]
fn max_pool_gradcheck_away_from_ties() {
    let mut rng = Rng::seed_from(32);
    // Spread values so the argmax is stable under the FD perturbation.
    let a = Tensor::randn(&[1, 1, 4, 4], &mut rng).scale(3.0);
    assert_grads_close(
        |t, vs| {
            let p = t.max_pool2d(vs[0], 1, 4, 4, 2);
            let sq = t.mul(p, p);
            t.sum_all(sq)
        },
        &[a],
        8e-2,
    );
}

#[test]
fn sqrt_exp_ln_gradcheck() {
    let a = Tensor::from_vec(vec![0.5, 1.0, 2.0, 4.0], &[4]);
    assert_grads_close(
        |t, vs| {
            let s = t.sqrt(vs[0]);
            let e = t.exp(s);
            let l = t.ln(e);
            let m = t.mul(l, e);
            t.sum_all(m)
        },
        &[a],
        2e-2,
    );
}

#[test]
fn sum_broadcast_rows_cols_gradcheck() {
    let mut rng = Rng::seed_from(5);
    let a = smooth_randn(&[3, 4], &mut rng);
    assert_grads_close(
        |t, vs| {
            let r = t.sum_rows(vs[0]); // (4,)
            let c = t.sum_cols(vs[0]); // (3,)
            let br = t.broadcast_rows(r, 3); // (3,4)
            let bc = t.broadcast_cols(c, 4); // (3,4)
            let m = t.mul(br, bc);
            let mm = t.mul(m, vs[0]);
            t.sum_all(mm)
        },
        &[a],
        3e-2,
    );
}

#[test]
fn broadcast_to_gradcheck() {
    let a = Tensor::from_vec(vec![0.7], &[1]);
    assert_grads_close(
        |t, vs| {
            let s = t.sum_all(vs[0]);
            let b = t.broadcast_to(s, &[2, 3]);
            let sq = t.mul(b, b);
            t.sum_all(sq)
        },
        &[a],
        1e-2,
    );
}

#[test]
fn reshape_gradcheck() {
    let mut rng = Rng::seed_from(6);
    let a = smooth_randn(&[2, 6], &mut rng);
    assert_grads_close(
        |t, vs| {
            let r = t.reshape(vs[0], &[3, 4]);
            let sq = t.mul(r, r);
            t.sum_all(sq)
        },
        &[a],
        1e-2,
    );
}

#[test]
fn conv_composite_gradcheck() {
    // conv2d = rows_to_nchw(im2col(x) · Wᵀ): check grads w.r.t. both x and W.
    let mut rng = Rng::seed_from(7);
    let x = smooth_randn(&[2, 2, 4, 4], &mut rng);
    let w = smooth_randn(&[3, 2 * 3 * 3], &mut rng).scale(0.3);
    let geo = Conv2dGeometry::new(2, 4, 4, 3, 1, 1);
    assert_grads_close(
        move |t, vs: &[Var]| {
            let cols = t.im2col(vs[0], geo);
            let wt = t.transpose2(vs[1]);
            let y = t.matmul(cols, wt); // (N*OH*OW, Cout)
            let img = t.rows_to_nchw(y, 2, 3, 4, 4);
            let sq = t.mul(img, img);
            t.sum_all(sq)
        },
        &[x, w],
        5e-2,
    );
}

#[test]
fn col2im_gradcheck() {
    let mut rng = Rng::seed_from(8);
    let geo = Conv2dGeometry::new(1, 3, 3, 2, 1, 0);
    let cols = smooth_randn(&[4, 4], &mut rng);
    assert_grads_close(
        move |t, vs: &[Var]| {
            let img = t.col2im(vs[0], geo);
            let sq = t.mul(img, img);
            t.sum_all(sq)
        },
        &[cols],
        2e-2,
    );
}

#[test]
fn avg_pool_and_unpool_gradcheck() {
    let mut rng = Rng::seed_from(9);
    let x = smooth_randn(&[1, 2, 4, 4], &mut rng);
    assert_grads_close(
        |t, vs| {
            let p = t.avg_pool2d(vs[0], 2, 4, 4, 2); // (1,2,2,2)
            let u = t.avg_unpool2d(p, 2, 2, 2, 2); // (1,2,4,4)
            let m = t.mul(u, vs[0]);
            t.sum_all(m)
        },
        &[x],
        2e-2,
    );
}

#[test]
fn spatial_and_channel_ops_gradcheck() {
    let mut rng = Rng::seed_from(10);
    let x = smooth_randn(&[2, 3, 2, 2], &mut rng);
    let gamma = smooth_randn(&[3], &mut rng);
    assert_grads_close(
        |t, vs| {
            let s = t.spatial_sum(vs[0], 3, 2, 2); // (6,)
            let mean = t.scale(s, 0.25);
            let bc = t.spatial_broadcast(mean, 3, 2, 2); // (2,3,2,2)
            let centered = t.sub(vs[0], bc);
            let g = t.channel_broadcast(vs[1], 2, 2, 2);
            let y = t.mul(centered, g);
            let cs = t.channel_sum(y, 3, 2, 2); // (3,)
            let sq = t.mul(cs, cs);
            t.sum_all(sq)
        },
        &[x, gamma],
        5e-2,
    );
}

#[test]
fn log_softmax_gradcheck() {
    let mut rng = Rng::seed_from(11);
    let logits = smooth_randn(&[4, 5], &mut rng);
    let target = {
        let mut t = Tensor::zeros(&[4, 5]);
        for i in 0..4 {
            t.data_mut()[i * 5 + i % 5] = 1.0;
        }
        t
    };
    assert_grads_close(
        move |t, vs: &[Var]| {
            let ls = t.log_softmax(vs[0]);
            let tt = t.constant(target.clone());
            let picked = t.mul(ls, tt);
            let s = t.sum_all(picked);
            let n = t.neg(s);
            t.scale(n, 0.25)
        },
        &[logits],
        1e-2,
    );
}

#[test]
fn second_order_matches_numeric_gradient_of_gradient() {
    // The distillation pattern: phi(x) = || dL/dx ||² where L = sum((x·x)²)-ish.
    // Analytic: build g = grad(L, x) on the tape, then grad(sum(g*g), x),
    // and compare against central differences of the *analytic inner
    // gradient* squared-norm.
    let mut rng = Rng::seed_from(12);
    let x0 = smooth_randn(&[2, 2], &mut rng);
    let w = smooth_randn(&[2, 2], &mut rng);

    let inner_sq_norm = |xs: &[Tensor]| -> f32 {
        let mut t = Tape::new();
        let x = t.leaf(xs[0].clone());
        let wc = t.constant(w.clone());
        let y = t.matmul(x, wc);
        let sq = t.mul(y, y);
        let loss = t.sum_all(sq);
        let g = t.grad(loss, &[x])[0];
        let gg = t.mul(g, g);
        let phi = t.sum_all(gg);
        t.value(phi).item()
    };

    let numeric = numeric_grad(inner_sq_norm, std::slice::from_ref(&x0), 0, 1e-3);

    let mut t = Tape::new();
    let x = t.leaf(x0);
    let wc = t.constant(w.clone());
    let y = t.matmul(x, wc);
    let sq = t.mul(y, y);
    let loss = t.sum_all(sq);
    let g = t.grad(loss, &[x])[0];
    let gg = t.mul(g, g);
    let phi = t.sum_all(gg);
    let hess = t.grad(phi, &[x])[0];

    let gap = t.value(hess).max_abs_diff(&numeric);
    assert!(gap < 5e-2, "second-order gap {gap}");
}

#[test]
fn second_order_through_log_softmax() {
    // The distillation objective differentiates through cross-entropy
    // gradients; verify grad-of-grad through the log-softmax vjp exactly.
    let mut rng = Rng::seed_from(13);
    let x0 = smooth_randn(&[2, 3], &mut rng);
    let target = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);

    let phi = |xs: &[Tensor]| -> f32 {
        let mut t = Tape::new();
        let x = t.leaf(xs[0].clone());
        let tt = t.constant(target.clone());
        let ls = t.log_softmax(x);
        let picked = t.mul(ls, tt);
        let s = t.sum_all(picked);
        let loss = t.neg(s);
        let g = t.grad(loss, &[x])[0];
        let gg = t.mul(g, g);
        let out = t.sum_all(gg);
        t.value(out).item()
    };
    let numeric = numeric_grad(phi, std::slice::from_ref(&x0), 0, 1e-3);

    let mut t = Tape::new();
    let x = t.leaf(x0);
    let tt = t.constant(target.clone());
    let ls = t.log_softmax(x);
    let picked = t.mul(ls, tt);
    let s = t.sum_all(picked);
    let loss = t.neg(s);
    let g = t.grad(loss, &[x])[0];
    let gg = t.mul(g, g);
    let out = t.sum_all(gg);
    let hess = t.grad(out, &[x])[0];
    let gap = t.value(hess).max_abs_diff(&numeric);
    assert!(gap < 5e-2, "second-order log-softmax gap {gap}");
}

#[test]
fn grad_of_unused_variable_is_zero() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(1.0));
    let z = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
    let y = tape.mul(x, x);
    let grads = tape.grad(y, &[x, z]);
    assert_eq!(tape.value(grads[1]).data(), &[0.0, 0.0]);
    assert_eq!(tape.value(grads[0]).item(), 2.0);
}

#[test]
fn constants_block_gradient_flow() {
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(2.0));
    let c = tape.constant(Tensor::scalar(5.0));
    let y = tape.mul(x, c);
    let g = tape.grad(y, &[x])[0];
    assert_eq!(tape.value(g).item(), 5.0);
}

#[test]
fn tape_reports_length_and_growth() {
    let mut tape = Tape::new();
    assert!(tape.is_empty());
    let x = tape.leaf(Tensor::scalar(1.0));
    let y = tape.mul(x, x);
    assert_eq!(tape.len(), 2);
    let before = tape.len();
    let _ = tape.grad(y, &[x]);
    assert!(
        tape.len() > before,
        "grad must emit nodes (higher-order support)"
    );
}

#[test]
fn repeated_grad_calls_are_consistent() {
    // Calling grad twice on the same loss yields equal values (the tape
    // is append-only; earlier adjoints are unaffected).
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]));
    let sq = tape.mul(x, x);
    let y = tape.sum_all(sq);
    let g1 = tape.grad(y, &[x])[0];
    let g2 = tape.grad(y, &[x])[0];
    assert_eq!(tape.value(g1).data(), tape.value(g2).data());
    assert_eq!(tape.value(g1).data(), &[2.0, -4.0, 1.0]);
}

#[test]
fn mixed_precision_free_ops_compose() {
    // reshape -> transpose -> reshape chains keep gradients exact.
    let mut rng = Rng::seed_from(21);
    let a = smooth_randn(&[2, 6], &mut rng);
    assert_grads_close(
        |t, vs| {
            let r = t.reshape(vs[0], &[4, 3]);
            let tr = t.transpose2(r);
            let back = t.reshape(tr, &[12]);
            let sq = t.mul(back, back);
            t.sum_all(sq)
        },
        &[a],
        1e-2,
    );
}

#[test]
fn gradients_accumulate_over_shared_subexpressions() {
    // y = x*x + x*x: dy/dx = 4x.
    let mut tape = Tape::new();
    let x = tape.leaf(Tensor::scalar(3.0));
    let a = tape.mul(x, x);
    let b = tape.mul(x, x);
    let y = tape.add(a, b);
    let g = tape.grad(y, &[x])[0];
    assert_eq!(tape.value(g).item(), 12.0);
}
