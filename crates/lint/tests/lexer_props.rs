//! Property tests for the lexer: banned tokens injected into string
//! literals, raw strings, char-adjacent positions and (nested) comments
//! must never produce diagnostics, while the same token in plain code
//! always does. This is the load-bearing property of the whole tool —
//! a lexer that leaks literal contents into "code" would drown the
//! workspace in false positives.

use proptest::prelude::*;
use qd_lint::{check_source, Config};

/// Tokens every rule family bans somewhere, paired with the rule name.
const BANNED: &[(&str, &str)] = &[
    ("Instant::now", "determinism"),
    ("thread_rng", "determinism"),
    ("SystemTime", "determinism"),
    ("HashMap", "order-stability"),
    ("HashSet", "order-stability"),
    (".unwrap()", "panic-safety"),
    ("panic!", "panic-safety"),
    ("unsafe", "unsafe-hygiene"),
];

/// An everywhere-scope config: every rule sees every path.
fn everywhere() -> Config {
    Config::default()
}

/// Lowercase letters and spaces, for payload padding.
const LOWER: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', ' ',
];

/// Characters that stress the lexer's literal handling: escapes,
/// quotes, braces (depth tracking) and apostrophes (char/lifetime).
const TRICKY: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', ' ', ' ', '\\',
    '\\', '"', '"', '\'', '\'', '{', '}', '{', '}', 'x', 'y', 'z', ' ',
];

/// Maps generated indices onto a character set (the vendored proptest
/// has no string strategies).
fn from_charset(picks: &[usize], charset: &[char]) -> String {
    picks.iter().map(|&i| charset[i % charset.len()]).collect()
}

/// Wraps `payload` in a non-code context.
fn in_context(kind: usize, payload: &str) -> String {
    match kind {
        0 => format!("fn f() {{ let s = \"{payload}\"; }}\n"),
        1 => format!("fn f() {{ let s = r#\"{payload}\"#; }}\n"),
        2 => format!("fn f() {{}} // {payload}\n"),
        3 => format!("/* {payload} */ fn f() {{}}\n"),
        4 => format!("/* outer /* {payload} */ tail */ fn f() {{}}\n"),
        _ => format!("//! {payload}\nfn f() {{}}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn banned_tokens_in_literals_and_comments_are_invisible(
        which in 0usize..8,
        kind in 0usize..6,
        prefix in proptest::collection::vec(0usize..27, 0..12usize),
        suffix in proptest::collection::vec(0usize..27, 0..12usize),
    ) {
        let (token, _) = BANNED[which];
        let payload = format!(
            "{}{token}{}",
            from_charset(&prefix, LOWER),
            from_charset(&suffix, LOWER)
        );
        let src = in_context(kind, &payload);
        let diags = check_source("crates/fed/src/x.rs", &src, &everywhere());
        prop_assert!(
            diags.is_empty(),
            "token {token:?} leaked out of context {kind}: {diags:?}\nsource: {src:?}"
        );
    }

    #[test]
    fn the_same_tokens_in_code_are_visible(which in 0usize..8) {
        let (token, rule) = BANNED[which];
        // Shape each token into plausible code position.
        let src = match token {
            ".unwrap()" => "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
            "panic!" => "fn f() { panic!(\"boom\") }\n".to_string(),
            "unsafe" => "fn f(p: *const u8) -> u8 { unsafe { *p } }\n".to_string(),
            tok => format!("fn f() {{ let _ = {tok}; }}\n"),
        };
        let diags = check_source("crates/fed/src/x.rs", &src, &everywhere());
        prop_assert!(
            diags.iter().any(|d| d.rule == rule),
            "token {token:?} not caught by {rule}: {diags:?}"
        );
    }

    #[test]
    fn string_escapes_never_unbalance_the_lexer(
        body in proptest::collection::vec(0usize..32, 0..24usize),
    ) {
        // Arbitrary escape-ridden strings followed by real code: the
        // trailing unwrap must still be seen exactly once.
        let body = from_charset(&body, TRICKY);
        let src = format!(
            "fn f() {{ let s = \"{}\"; x.unwrap() }}\n",
            body.replace('\\', "\\\\").replace('"', "\\\"")
        );
        let diags = check_source("crates/fed/src/x.rs", &src, &everywhere());
        let unwraps = diags
            .iter()
            .filter(|d| d.rule == "panic-safety")
            .count();
        prop_assert_eq!(unwraps, 1, "source: {:?} diags: {:?}", src, diags);
    }
}
