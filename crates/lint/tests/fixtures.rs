//! Fixture-based self-tests: every rule family is exercised against a
//! checked-in corpus with positive (must fire), suppressed (must not
//! fire) and out-of-scope (must not fire) cases, and the `qd-lint`
//! binary is driven end-to-end to pin its exit codes and output shape.

use qd_lint::{engine, Config};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_config() -> Config {
    Config::load(&fixtures_dir().join("qd-lint.toml")).expect("fixture config parses")
}

/// Runs the engine over the corpus, returning `(file, line, rule)`
/// triples with paths reduced to fixture-relative form.
fn corpus_findings() -> Vec<(String, usize, String)> {
    let diags = engine::run(&[fixtures_dir()], &fixture_config()).expect("corpus scans");
    let mut out: Vec<_> = diags
        .into_iter()
        .map(|d| {
            let rel = d
                .path
                .split_once("fixtures/")
                .map(|(_, tail)| tail.to_string())
                .expect("diagnostic path is under fixtures/");
            (rel, d.line, d.rule)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn corpus_produces_exactly_the_expected_findings() {
    let expected: Vec<(String, usize, String)> = [
        ("checkpoint.rs", 7, "durability"),
        ("checkpoint.rs", 13, "durability"),
        ("core/direct_fs.rs", 4, "vfs-discipline"),
        ("core/direct_fs.rs", 8, "vfs-discipline"),
        ("core/direct_fs.rs", 12, "vfs-discipline"),
        ("core/direct_fs.rs", 16, "vfs-discipline"),
        ("determinism.rs", 3, "determinism"),
        ("determinism.rs", 6, "determinism"),
        ("determinism.rs", 9, "determinism"),
        ("determinism.rs", 10, "determinism"),
        ("determinism.rs", 14, "determinism"),
        ("determinism.rs", 19, "determinism"),
        ("durable/split.rs", 21, "durability"),
        ("fed/order.rs", 3, "order-stability"),
        ("fed/order.rs", 4, "order-stability"),
        ("fed/order.rs", 6, "order-stability"),
        ("fed/order.rs", 16, "order-stability"),
        ("helpers/math.rs", 9, "panic-safety"),
        ("locks/order.rs", 7, "lock-order"),
        ("locks/order.rs", 13, "lock-order"),
        ("serving/panics.rs", 4, "panic-safety"),
        ("serving/panics.rs", 8, "panic-safety"),
        ("serving/panics.rs", 13, "panic-safety"),
        ("serving/panics.rs", 21, "panic-safety"),
        ("serving/panics.rs", 26, "panic-safety"),
        ("suppress/unknown.rs", 5, "suppression-hygiene"),
        ("unsafe_code.rs", 4, "unsafe-hygiene"),
        ("unsafe_code.rs", 7, "unsafe-hygiene"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r.to_string()))
    .collect();
    assert_eq!(corpus_findings(), expected);
}

#[test]
fn suppressed_and_out_of_scope_cases_never_fire() {
    let findings = corpus_findings();
    // The clean file and the bench tree (excluded from determinism by
    // the fixture config) must not appear at all.
    assert!(
        findings.iter().all(|(f, _, _)| f != "clean.rs"),
        "{findings:?}"
    );
    assert!(
        findings.iter().all(|(f, _, _)| !f.starts_with("bench/")),
        "{findings:?}"
    );
    // Suppressed lines: the `// qd-lint: allow(...)` cases in each file.
    for (file, line) in [
        ("determinism.rs", 24),
        ("fed/order.rs", 21),
        ("serving/panics.rs", 30),
        ("serving/panics.rs", 35),
        ("checkpoint.rs", 29),
        ("core/direct_fs.rs", 21),
        ("unsafe_code.rs", 10),
        // Reachable but justified (helpers) and meta-suppressed typo.
        ("helpers/math.rs", 14),
        ("suppress/unknown.rs", 9),
    ] {
        assert!(
            !findings.iter().any(|(f, l, _)| f == file && *l == line),
            "{file}:{line} should be suppressed"
        );
    }
}

#[test]
fn deny_mode_fails_on_the_corpus_with_file_line_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_qd-lint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["--deny", "--config", "fixtures/qd-lint.toml", "fixtures"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "corpus must fail --deny");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("fixtures/serving/panics.rs:4: [panic-safety]"),
        "diagnostics carry file:line: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("violation(s)"), "{stderr}");
}

#[test]
fn clean_tree_passes_deny_mode() {
    let out = Command::new(env!("CARGO_BIN_EXE_qd-lint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["--deny", "--config", "fixtures/qd-lint.toml", "src"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "lint's own src must be clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn reachability_findings_carry_the_witness_call_chain() {
    let diags = engine::run(&[fixtures_dir()], &fixture_config()).expect("corpus scans");
    let reach = diags
        .iter()
        .find(|d| d.path.ends_with("helpers/math.rs") && d.rule == "panic-safety")
        .expect("the reachable unwrap is reported");
    let chain: Vec<&str> = reach.chain.iter().map(String::as_str).collect();
    assert_eq!(chain.len(), 4, "{chain:?}");
    assert!(
        chain[0].ends_with("serving::entry::handle_request"),
        "{chain:?}"
    );
    assert!(chain[3].ends_with("helpers::math::deep_sum"), "{chain:?}");
    assert!(
        reach.to_string().contains("[via "),
        "chains render in text output: {reach}"
    );
    // The unreachable twin of the same token never fires.
    assert!(
        !diags
            .iter()
            .any(|d| d.path.ends_with("helpers/math.rs") && d.line == 18),
        "cold_stats is unreachable"
    );
}

#[test]
fn json_format_emits_the_findings_machine_readably() {
    let out = Command::new(env!("CARGO_BIN_EXE_qd-lint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args([
            "--format",
            "json",
            "--config",
            "fixtures/qd-lint.toml",
            "fixtures",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "json without --deny still exits 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(
        stdout
            .contains("\"path\":\"fixtures/durable/split.rs\",\"line\":21,\"rule\":\"durability\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"rule\":\"lock-order\""), "{stdout}");
    assert!(
        stdout.contains("\"chain\":[\"fixtures::serving::entry::handle_request\","),
        "{stdout}"
    );
}

#[test]
fn graph_dot_output_matches_the_pinned_fixture_byte_for_byte() {
    let out = Command::new(env!("CARGO_BIN_EXE_qd-lint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args([
            "--graph",
            "dot",
            "--config",
            "fixtures/qd-lint.toml",
            "fixtures/graph",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "--graph dot exits 0");
    let pinned =
        std::fs::read_to_string(fixtures_dir().parent().unwrap().join("fixtures/graph.dot"))
            .expect("pinned dot exists");
    assert_eq!(String::from_utf8(out.stdout).unwrap(), pinned);
}

#[test]
fn list_rules_prints_the_pinned_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_qd-lint"))
        .args(["--list-rules"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        qd_lint::rules::render_table()
    );
}
