//! Edge-case and property tests for the item parser and the lexer
//! behaviors it leans on: lifetimes vs. char literals, `fn` keywords
//! inside macro bodies, nested generic angle brackets — plus the
//! load-bearing property that `parse_items` never panics, checked
//! against arbitrary token soup *and* every `.rs` file in this
//! workspace.

use proptest::prelude::*;
use qd_lint::items::parse_items;
use qd_lint::lexer::lex;

fn items_of(src: &str) -> Vec<qd_lint::items::FnItem> {
    parse_items("crates/serve/src/pool.rs", &lex(src))
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` (lifetime) must not open a char literal that would swallow
    // the following tokens; `'a'` (char) must stay blanked.
    let src = "\
fn borrow<'a>(x: &'a str) -> &'a str {
    helper(x)
}
fn with_char() -> char {
    let c = 'a';
    other_helper();
    c
}
";
    let items = items_of(src);
    let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["borrow", "with_char"]);
    assert_eq!(items[0].calls.len(), 1);
    assert_eq!(items[0].calls[0].name, "helper");
    assert!(items[1].calls.iter().any(|c| c.name == "other_helper"));
}

#[test]
fn fn_keyword_inside_macro_bodies_opens_no_item() {
    let src = "\
macro_rules! make_accessor {
    ($name:ident) => {
        fn $name(&self) -> u32 { self.0 }
    };
}
fn outer() {
    assert_eq!(compute(), 4);
}
";
    let items = items_of(src);
    let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["outer"], "{items:?}");
    // Calls inside argument-position macro bodies are still attributed.
    assert!(items[0].calls.iter().any(|c| c.name == "compute"));
}

#[test]
fn nested_generic_angle_brackets_do_not_derail_signatures() {
    let src = "\
fn deep<T: Into<Vec<Box<dyn Fn(u8) -> Option<u32>>>>>(t: T) -> Result<(), E> {
    go(t)
}
fn after() {}
";
    let items = items_of(src);
    let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["deep", "after"]);
    assert_eq!(items[0].calls.len(), 1);
    assert_eq!(items[0].calls[0].name, "go");
}

#[test]
fn parser_never_panics_on_any_workspace_file() {
    // Walk the real workspace: every source file this repo contains
    // must parse without panicking, and every parsed item must have a
    // sane span.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/lint has a workspace root")
        .to_path_buf();
    let mut stack = vec![root.clone()];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let Ok(source) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let rel = path.strip_prefix(&root).unwrap_or(&path);
                let rel = rel.to_string_lossy().replace('\\', "/");
                let file = lex(&source);
                for item in parse_items(&rel, &file) {
                    assert!(
                        item.start <= item.end && item.end < file.lines.len(),
                        "bad span for {} in {rel}",
                        item.qualified
                    );
                }
                seen += 1;
            }
        }
    }
    assert!(seen > 50, "workspace walk found only {seen} files");
}

/// Token soup alphabet: everything that stresses the parser's state
/// machines — delimiters, `fn`/`impl`/`mod` keywords, `#`, `!`, `'`.
const SOUP: &[&str] = &[
    "fn",
    "impl",
    "mod",
    "trait",
    "where",
    "macro_rules",
    "f",
    "g",
    "'a",
    "'a'",
    "#",
    "!",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "::",
    ".",
    ";",
    ",",
    "->",
    "=>",
    "&",
    "0",
    "x",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_items_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..29, 0..64usize),
    ) {
        let src: String = picks
            .iter()
            .map(|&i| SOUP[i % SOUP.len()])
            .collect::<Vec<_>>()
            .join(" ");
        // Must not panic, whatever the soup decodes to.
        let items = parse_items("crates/serve/src/pool.rs", &lex(&src));
        for item in items {
            prop_assert!(item.start <= item.end);
        }
    }
}
