//! `qd-lint`: the workspace invariant gate.
//!
//! ```text
//! qd-lint [--deny] [--list-rules] [--format json] [--graph dot]
//!         [--config <path>] [paths...]
//! ```
//!
//! With no paths, scans the workspace source roots (`crates`, `src`,
//! `examples`, `tests`). The config defaults to `./qd-lint.toml` when
//! present. `--deny` exits non-zero on any finding (the CI gate);
//! without it findings are printed as warnings. `--format json` prints
//! findings as a JSON array instead of text (exit semantics unchanged);
//! `--graph dot` prints the workspace call graph, annotated with
//! entry-point reachability, and exits 0 without reporting findings.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use qd_lint::{engine, rules, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    deny: bool,
    list_rules: bool,
    json: bool,
    graph_dot: bool,
    config: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        deny: false,
        list_rules: false,
        json: false,
        graph_dot: false,
        config: None,
        paths: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => cli.deny = true,
            "--list-rules" => cli.list_rules = true,
            "--format" => {
                let fmt = args
                    .next()
                    .ok_or_else(|| "--format requires a value (json)".to_string())?;
                match fmt.as_str() {
                    "json" => cli.json = true,
                    "text" => cli.json = false,
                    other => return Err(format!("unknown format {other} (expected json or text)")),
                }
            }
            "--graph" => {
                let kind = args
                    .next()
                    .ok_or_else(|| "--graph requires a value (dot)".to_string())?;
                if kind != "dot" {
                    return Err(format!("unknown graph format {kind} (expected dot)"));
                }
                cli.graph_dot = true;
            }
            "--config" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--config requires a path".to_string())?;
                cli.config = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qd-lint [--deny] [--list-rules] [--format json] [--graph dot] \
                     [--config <path>] [paths...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other} (see --help)"))
            }
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if cli.list_rules {
        print!("{}", rules::render_table());
        return ExitCode::SUCCESS;
    }
    let config_path = cli.config.clone().or_else(|| {
        PathBuf::from("qd-lint.toml")
            .exists()
            .then(|| "qd-lint.toml".into())
    });
    let config = match config_path {
        Some(path) => match Config::load(&path) {
            Ok(config) => config,
            Err(e) => {
                eprintln!("qd-lint: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Config::default(),
    };
    let roots: Vec<PathBuf> = if cli.paths.is_empty() {
        ["crates", "src", "examples", "tests"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect()
    } else {
        cli.paths
    };
    let files = match engine::load_files(&roots, &config) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("qd-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = engine::analyze(&files, &config);
    if cli.graph_dot {
        print!("{}", analysis.graph.to_dot(&analysis.reach));
        return ExitCode::SUCCESS;
    }
    let diagnostics = analysis.diagnostics;
    if cli.json {
        print!("{}", engine::to_json(&diagnostics));
    } else if diagnostics.is_empty() {
        println!("qd-lint: clean");
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
    }
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        let n = diagnostics.len();
        if cli.deny {
            eprintln!("qd-lint: {n} violation(s)");
            ExitCode::FAILURE
        } else {
            eprintln!("qd-lint: {n} warning(s)");
            ExitCode::SUCCESS
        }
    }
}
