//! The workspace call graph: linking, entry points, reachability.
//!
//! Built from the per-file items of [`crate::items`], the graph is the
//! substrate for every interprocedural rule. Resolution is
//! **conservative and name-based** — there is no type information, so:
//!
//! * a direct call `helper(..)` links to *every* workspace `fn` named
//!   `helper`;
//! * a qualified call `journal::append(..)` links to every `fn` whose
//!   qualified name ends with those segments (`self`/`crate`/`super`
//!   prefixes are discarded first);
//! * a method call `x.helper(..)` links to every `fn` named `helper`,
//!   regardless of receiver type;
//! * a call that matches no workspace `fn` at all (std, vendored deps)
//!   is recorded as **unresolved** rather than silently dropped — the
//!   DOT dump renders it as a `"?name"` leaf.
//!
//! Over-linking makes reachability a superset of any real execution, so
//! rules built on it err toward reporting; under-linking is confined to
//! shapes the item parser deliberately skips (see its docs).
//!
//! Entry points come from `qd-lint.toml`'s `[entrypoints]` table: named
//! sets of `::`-glob patterns over qualified names. Reachability is a
//! breadth-first traversal from each set's matching functions in
//! deterministic order (sets alphabetically, functions in file/line
//! order), recording a parent edge per reached function so diagnostics
//! can print a shortest witness call chain. `#[cfg(test)]` functions
//! neither seed nor propagate reachability.

use crate::config::name_glob_match;
use crate::items::FnItem;
use std::collections::BTreeMap;

/// One function node: the parsed item plus its owning file.
#[derive(Debug, Clone)]
pub struct Node {
    /// The file the function lives in (config-relative path).
    pub file: String,
    /// The parsed item.
    pub item: FnItem,
}

/// A resolved call edge: which call in the caller, which nodes it may
/// target (empty means unresolved).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Index into the caller's `item.calls`.
    pub call: usize,
    /// Indices of every node the call may resolve to.
    pub targets: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Every function in the workspace, in (file, line) order.
    pub nodes: Vec<Node>,
    /// Per-node outgoing edges, parallel to `nodes`.
    pub edges: Vec<Vec<Edge>>,
    name_index: BTreeMap<String, Vec<usize>>,
}

/// Why a function is reachable: the entry set, the entry function, and
/// the BFS parent it was first reached from.
#[derive(Debug, Clone)]
pub struct Origin {
    /// The `[entrypoints]` set name.
    pub set: String,
    /// Node index of the entry function.
    pub entry: usize,
    /// BFS predecessor (`None` for entry functions themselves).
    pub parent: Option<usize>,
}

/// Reachability annotation over a [`Graph`], parallel to its nodes.
#[derive(Debug, Clone, Default)]
pub struct Reach {
    /// Per-node origin; `None` when unreachable from every entry set.
    pub origin: Vec<Option<Origin>>,
}

impl Graph {
    /// Builds the graph from per-file items. `files` must already be in
    /// deterministic (sorted-path) order; node order follows it.
    pub fn build(files: &[(String, Vec<FnItem>)]) -> Graph {
        let mut nodes = Vec::new();
        for (path, items) in files {
            for item in items {
                nodes.push(Node {
                    file: path.clone(),
                    item: item.clone(),
                });
            }
        }
        let mut name_index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            name_index
                .entry(node.item.name.clone())
                .or_default()
                .push(i);
        }
        let mut edges = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let mut out = Vec::with_capacity(node.item.calls.len());
            for (ci, call) in node.item.calls.iter().enumerate() {
                let mut targets = Vec::new();
                if let Some(cands) = name_index.get(&call.name) {
                    let want: Vec<&str> = call
                        .path
                        .iter()
                        .map(String::as_str)
                        .filter(|s| !matches!(*s, "self" | "crate" | "super" | "Self"))
                        .collect();
                    for &cand in cands {
                        if want.len() <= 1 || qualified_suffix(&nodes[cand].item.qualified, &want) {
                            targets.push(cand);
                        }
                    }
                }
                out.push(Edge { call: ci, targets });
            }
            edges.push(out);
        }
        Graph {
            nodes,
            edges,
            name_index,
        }
    }

    /// Node indices whose function name is `name`.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.name_index.get(name).map_or(&[], Vec::as_slice)
    }

    /// Direct (one-hop) callers of `node`.
    pub fn callers(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (caller, edges) in self.edges.iter().enumerate() {
            if edges.iter().any(|e| e.targets.contains(&node)) {
                out.push(caller);
            }
        }
        out
    }

    /// Every node reachable from `node` through resolved edges,
    /// including `node` itself, excluding `#[cfg(test)]` functions.
    pub fn descendants(&self, node: usize) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = vec![node];
        seen[node] = true;
        let mut at = 0;
        while at < queue.len() {
            let n = queue[at];
            at += 1;
            for edge in &self.edges[n] {
                for &t in &edge.targets {
                    if !seen[t] && !self.nodes[t].item.in_test {
                        seen[t] = true;
                        queue.push(t);
                    }
                }
            }
        }
        queue
    }

    /// Computes reachability from the configured entry sets (a map of
    /// set name to `::`-glob patterns over qualified names).
    pub fn reachability(&self, entrypoints: &BTreeMap<String, Vec<String>>) -> Reach {
        let mut origin: Vec<Option<Origin>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (set, globs) in entrypoints {
            for (i, node) in self.nodes.iter().enumerate() {
                if origin[i].is_some() || node.item.in_test {
                    continue;
                }
                if globs
                    .iter()
                    .any(|g| name_glob_match(g, &node.item.qualified))
                {
                    origin[i] = Some(Origin {
                        set: set.clone(),
                        entry: i,
                        parent: None,
                    });
                    queue.push(i);
                }
            }
        }
        let mut at = 0;
        while at < queue.len() {
            let n = queue[at];
            at += 1;
            let (set, entry) = {
                let o = origin[n].as_ref().expect("queued nodes have origins");
                (o.set.clone(), o.entry)
            };
            for edge in &self.edges[n] {
                for &t in &edge.targets {
                    if origin[t].is_none() && !self.nodes[t].item.in_test {
                        origin[t] = Some(Origin {
                            set: set.clone(),
                            entry,
                            parent: Some(n),
                        });
                        queue.push(t);
                    }
                }
            }
        }
        Reach { origin }
    }

    /// The witness call chain (entry first, `node` last) for a
    /// reachable node, as qualified names.
    pub fn chain(&self, reach: &Reach, node: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            rev.push(self.nodes[n].item.qualified.clone());
            cur = reach.origin[n].as_ref().and_then(|o| o.parent);
        }
        rev.reverse();
        rev
    }

    /// Renders the graph as deterministic DOT: nodes sorted by
    /// qualified name, entry/reachable annotations from `reach`,
    /// unresolved calls as `"?name"` leaves. `#[cfg(test)]` functions
    /// are omitted. Byte-for-byte stable for a given source tree.
    pub fn to_dot(&self, reach: &Reach) -> String {
        let mut node_lines: Vec<String> = Vec::new();
        let mut edge_lines: Vec<String> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.item.in_test {
                continue;
            }
            let attr = match &reach.origin[i] {
                Some(o) if o.parent.is_none() => format!(" [entry=\"{}\"]", o.set),
                Some(o) => format!(" [reachable=\"{}\"]", o.set),
                None => String::new(),
            };
            node_lines.push(format!("    \"{}\"{attr};", node.item.qualified));
            for edge in &self.edges[i] {
                if edge.targets.is_empty() {
                    edge_lines.push(format!(
                        "    \"{}\" -> \"?{}\";",
                        node.item.qualified, node.item.calls[edge.call].name
                    ));
                }
                for &t in &edge.targets {
                    if self.nodes[t].item.in_test {
                        continue;
                    }
                    edge_lines.push(format!(
                        "    \"{}\" -> \"{}\";",
                        node.item.qualified, self.nodes[t].item.qualified
                    ));
                }
            }
        }
        node_lines.sort();
        node_lines.dedup();
        edge_lines.sort();
        edge_lines.dedup();
        let mut out = String::from("digraph qd_lint_callgraph {\n");
        for line in node_lines.into_iter().chain(edge_lines) {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// Whether `qualified` (a `::`-joined name) ends with the segments in
/// `want` (already cleaned of `self`/`crate`/`super`).
fn qualified_suffix(qualified: &str, want: &[&str]) -> bool {
    let have: Vec<&str> = qualified.split("::").collect();
    if want.len() > have.len() {
        return false;
    }
    have[have.len() - want.len()..] == *want
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let parsed: Vec<(String, Vec<FnItem>)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), parse_items(p, &lex(src))))
            .collect();
        Graph::build(&parsed)
    }

    #[test]
    fn calls_resolve_by_name_across_files() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); }\n"),
            ("crates/b/src/util.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges[0][0].targets, vec![1]);
        assert_eq!(g.callers(1), vec![0]);
    }

    #[test]
    fn qualified_calls_filter_by_suffix() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn entry() { util::helper(); other::helper(); }\n",
            ),
            ("crates/b/src/util.rs", "pub fn helper() {}\n"),
        ]);
        // `util::helper` resolves (suffix matches qd_b::util::helper);
        // `other::helper` does not.
        assert_eq!(g.edges[0][0].targets, vec![1]);
        assert!(g.edges[0][1].targets.is_empty());
    }

    #[test]
    fn reachability_walks_chains_and_skips_tests() {
        let src = "\
pub fn serve() { step(); }
fn step() { leaf(); }
fn leaf() {}
fn cold() { leaf(); }
#[cfg(test)]
mod tests {
    fn t() { cold(); }
}
";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let mut eps = BTreeMap::new();
        eps.insert("serving".to_string(), vec!["qd_a::serve".to_string()]);
        let reach = g.reachability(&eps);
        let names: Vec<(&str, bool)> = g
            .nodes
            .iter()
            .zip(&reach.origin)
            .map(|(n, o)| (n.item.name.as_str(), o.is_some()))
            .collect();
        assert_eq!(
            names,
            [
                ("serve", true),
                ("step", true),
                ("leaf", true),
                ("cold", false),
                ("t", false)
            ]
        );
        let leaf = g.by_name("leaf")[0];
        assert_eq!(
            g.chain(&reach, leaf),
            ["qd_a::serve", "qd_a::step", "qd_a::leaf"]
        );
    }

    #[test]
    fn dot_is_deterministic_and_marks_unresolved() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn serve() { step(); missing(); }\nfn step() {}\n",
        )]);
        let mut eps = BTreeMap::new();
        eps.insert("serving".to_string(), vec!["qd_a::serve".to_string()]);
        let reach = g.reachability(&eps);
        let dot = g.to_dot(&reach);
        assert_eq!(dot, g.to_dot(&reach), "rendering is pure");
        assert!(dot.contains("\"qd_a::serve\" [entry=\"serving\"];"));
        assert!(dot.contains("\"qd_a::step\" [reachable=\"serving\"];"));
        assert!(dot.contains("\"qd_a::serve\" -> \"?missing\";"));
    }
}
