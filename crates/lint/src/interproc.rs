//! Interprocedural rules over the workspace call graph.
//!
//! Three rule families live here because they cannot be decided one
//! file at a time:
//!
//! * **panic-safety (reachability-scoped)** — a panic-capable token in
//!   *any* function transitively reachable from a configured entry
//!   point is a finding, no matter which directory the function lives
//!   in. Path-scoped findings are still produced by the local rule; this
//!   pass only adds functions *outside* those path scopes, so a helper
//!   in `crates/data` called from the serving executor no longer sails
//!   through. Each diagnostic carries the witness call chain.
//! * **durability (interprocedural)** — a file-creating or
//!   file-writing call in a durable module is satisfied by
//!   `fsync`/`sync_all` (+ `rename` for fresh files) anywhere in its
//!   reachable component: the function itself, its transitive callees,
//!   its direct callers, and those callers' callees. The tmp+fsync+
//!   rename idiom may legitimately be split across helpers; only a
//!   component with no fsync at all is a finding.
//! * **lock-order** — lock acquisition sites (method calls named
//!   `lock()`, keyed by the receiver's final field segment) are
//!   collected per function; an acquisition made while another lock is
//!   held — directly or through a call chain — records an ordered
//!   pair. Two functions that can acquire the same two locks in
//!   opposite orders along some call path are each flagged with the
//!   witness chain, since that shape deadlocks under interleaving.
//!
//! Conservatism inherits from the graph: name-based resolution
//! over-links, so every analysis here over-approximates true reachability
//! and flags a superset. Deliberate exceptions use the same
//! `// qd-lint: allow(<rule>)` protocol as every other rule.

use crate::config::RuleScope;
use crate::graph::{Graph, Reach};
use crate::lexer::{find_token, LexedFile};
use crate::rules::panic_tokens_on;
use std::collections::BTreeMap;

/// An interprocedural finding, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub path: String,
    /// 0-based line.
    pub line: usize,
    /// Rule family name.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
    /// Witness call chain (qualified names, outermost first).
    pub chain: Vec<String>,
}

fn line_in_test(files: &BTreeMap<String, LexedFile>, path: &str, line: usize) -> bool {
    files
        .get(path)
        .and_then(|f| f.lines.get(line))
        .is_none_or(|l| l.in_test)
}

/// Reachability-scoped panic-safety: panic-capable tokens in functions
/// reachable from any entry set, outside the rule's path-scope
/// `include` (those are the local rule's job) and outside its
/// `exclude` globs (the explicit conservatism dial).
pub fn reachable_panics(
    graph: &Graph,
    reach: &Reach,
    files: &BTreeMap<String, LexedFile>,
    scope: &RuleScope,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(origin) = &reach.origin[i] else {
            continue;
        };
        if node.item.in_test {
            continue;
        }
        let path = &node.file;
        if scope
            .exclude
            .iter()
            .any(|g| crate::config::glob_match(g, path))
        {
            continue;
        }
        if !scope.include.is_empty() && scope.applies_to(path) {
            continue; // the local path-scoped rule already covers this file
        }
        let Some(lexed) = files.get(path) else {
            continue;
        };
        let chain = graph.chain(reach, i);
        let entry = &graph.nodes[origin.entry].item.qualified;
        for line in node.item.start..=node.item.end.min(lexed.lines.len().saturating_sub(1)) {
            let lexline = &lexed.lines[line];
            if lexline.in_test {
                continue;
            }
            for tok in panic_tokens_on(&lexline.code) {
                out.push(Finding {
                    path: path.clone(),
                    line,
                    rule: "panic-safety",
                    message: format!(
                        "`{tok}` can panic in `{}`, which is reachable from `{}` entry \
                         point `{entry}`",
                        node.item.qualified, origin.set
                    ),
                    chain: chain.clone(),
                });
            }
        }
    }
    out
}

/// What a durability trigger demands of its reachable component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demand {
    /// Fresh file contents: fsync and rename (the tmp-swap idiom).
    CreateWrite,
    /// Append to a committed file: fsync only.
    Append,
}

/// Interprocedural durability over the files `scope` selects: triggers
/// are `File::create` path calls and `create`/`write`/`append` method
/// calls on a `vfs`/`fs` receiver; satisfaction is searched across the
/// trigger function's reachable component (itself, transitive callees,
/// direct callers and their callees).
pub fn durability(
    graph: &Graph,
    files: &BTreeMap<String, LexedFile>,
    scope: &RuleScope,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.item.in_test || !scope.applies_to(&node.file) {
            continue;
        }
        let mut component: Option<Vec<usize>> = None;
        for call in &node.item.calls {
            let demand = if !call.method && call.path.len() >= 2 && call.name == "create" {
                Some((
                    Demand::CreateWrite,
                    format!("{}::create", call.path[call.path.len() - 2]),
                ))
            } else if call.method
                && matches!(call.receiver.as_deref(), Some("vfs") | Some("fs"))
                && matches!(call.name.as_str(), "create" | "write")
            {
                Some((
                    Demand::CreateWrite,
                    format!("{}.{}", call.receiver.as_deref().unwrap_or(""), call.name),
                ))
            } else if call.method
                && matches!(call.receiver.as_deref(), Some("vfs") | Some("fs"))
                && call.name == "append"
            {
                Some((
                    Demand::Append,
                    format!("{}.append", call.receiver.as_deref().unwrap_or("")),
                ))
            } else {
                None
            };
            let Some((demand, what)) = demand else {
                continue;
            };
            if line_in_test(files, &node.file, call.line) {
                continue;
            }
            let ids = component.get_or_insert_with(|| {
                let mut ids = graph.descendants(i);
                for caller in graph.callers(i) {
                    for d in graph.descendants(caller) {
                        if !ids.contains(&d) {
                            ids.push(d);
                        }
                    }
                }
                ids
            });
            let has = |tokens: &[&str]| {
                ids.iter().any(|&n| {
                    let nd = &graph.nodes[n];
                    let Some(lexed) = files.get(&nd.file) else {
                        return false;
                    };
                    lexed.lines[nd.item.start..=nd.item.end.min(lexed.lines.len() - 1)]
                        .iter()
                        .any(|l| tokens.iter().any(|t| find_token(&l.code, t)))
                })
            };
            let fsynced = has(&["sync_all", "sync_data", "fsync"]);
            let renamed = demand == Demand::Append || has(&["rename"]);
            if fsynced && renamed {
                continue;
            }
            let mut missing = Vec::new();
            if !fsynced {
                missing.push("fsync");
            }
            if !renamed {
                missing.push("rename");
            }
            out.push(Finding {
                path: node.file.clone(),
                line: call.line,
                rule: "durability",
                message: format!(
                    "`{what}` without the tmp+fsync+rename idiom (missing {}) in \
                     `{}` or any fn in its reachable component",
                    missing.join("+"),
                    node.item.qualified
                ),
                chain: vec![node.item.qualified.clone()],
            });
        }
    }
    out
}

/// Where an ordered lock pair was witnessed.
#[derive(Debug, Clone)]
struct Witness {
    path: String,
    line: usize,
    chain: Vec<String>,
}

/// Lock-order consistency over the files `scope` selects: flags any two
/// locks acquired in opposite orders along some (possibly
/// interprocedural) path.
pub fn lock_order(
    graph: &Graph,
    files: &BTreeMap<String, LexedFile>,
    scope: &RuleScope,
) -> Vec<Finding> {
    // Which locks each function acquires, transitively, with a witness
    // path of node indices from the function to the acquiring function.
    let mut closure_memo: BTreeMap<usize, Vec<(String, Vec<usize>)>> = BTreeMap::new();
    let mut closure = |graph: &Graph, start: usize| -> Vec<(String, Vec<usize>)> {
        if let Some(hit) = closure_memo.get(&start) {
            return hit.clone();
        }
        // BFS with parent links so each acquired lock gets a shortest
        // witness path.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut order = vec![start];
        let mut at = 0;
        while at < order.len() {
            let n = order[at];
            at += 1;
            for edge in &graph.edges[n] {
                for &t in &edge.targets {
                    if t != start && !parent.contains_key(&t) && !graph.nodes[t].item.in_test {
                        parent.insert(t, n);
                        order.push(t);
                    }
                }
            }
        }
        let mut acquired: Vec<(String, Vec<usize>)> = Vec::new();
        for &n in &order {
            let node = &graph.nodes[n];
            if !scope.applies_to(&node.file) || node.item.in_test {
                continue;
            }
            for lock in &node.item.locks {
                if acquired.iter().any(|(l, _)| l == &lock.lock) {
                    continue;
                }
                let mut path = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                acquired.push((lock.lock.clone(), path));
            }
        }
        closure_memo.insert(start, acquired.clone());
        acquired
    };

    // Ordered pairs: lock `a` held (conservatively: acquired earlier in
    // the same fn) when lock `b` is acquired, directly or via a call.
    let mut pairs: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.item.in_test || !scope.applies_to(&node.file) {
            continue;
        }
        #[derive(Debug)]
        enum Event<'a> {
            Acquire(&'a crate::items::LockSite),
            Call(usize),
        }
        let mut events: Vec<(usize, Event<'_>)> = node
            .item
            .locks
            .iter()
            .map(|l| (l.seq, Event::Acquire(l)))
            .chain(graph.edges[i].iter().enumerate().map(|(ei, _)| {
                (
                    node.item.calls[graph.edges[i][ei].call].seq,
                    Event::Call(ei),
                )
            }))
            .collect();
        events.sort_by_key(|&(seq, _)| seq);
        let mut held: Vec<String> = Vec::new();
        for (_, event) in events {
            match event {
                Event::Acquire(site) => {
                    if line_in_test(files, &node.file, site.line) {
                        continue;
                    }
                    for a in &held {
                        if a != &site.lock {
                            pairs
                                .entry((a.clone(), site.lock.clone()))
                                .or_insert_with(|| Witness {
                                    path: node.file.clone(),
                                    line: site.line,
                                    chain: vec![node.item.qualified.clone()],
                                });
                        }
                    }
                    if !held.contains(&site.lock) {
                        held.push(site.lock.clone());
                    }
                }
                Event::Call(ei) => {
                    if held.is_empty() {
                        continue;
                    }
                    let call = &node.item.calls[graph.edges[i][ei].call];
                    for &t in &graph.edges[i][ei].targets {
                        for (b, path) in closure(graph, t) {
                            for a in &held {
                                if a != &b {
                                    let chain: Vec<String> = std::iter::once(i)
                                        .chain(path.iter().copied())
                                        .map(|n| graph.nodes[n].item.qualified.clone())
                                        .collect();
                                    pairs.entry((a.clone(), b.clone())).or_insert_with(|| {
                                        Witness {
                                            path: node.file.clone(),
                                            line: call.line,
                                            chain,
                                        }
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((a, b), w) in &pairs {
        let Some(rev) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        out.push(Finding {
            path: w.path.clone(),
            line: w.line,
            rule: "lock-order",
            message: format!(
                "inconsistent lock order: `{a}` is held when `{b}` is acquired here, \
                 but the opposite order occurs at {}:{}",
                rev.path,
                rev.line + 1
            ),
            chain: w.chain.clone(),
        });
    }
    out
}
