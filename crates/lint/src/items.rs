//! Item-level parsing on top of the [lexer](crate::lexer): `fn`
//! definitions, call expressions and lock-acquisition sites.
//!
//! The call-graph rules (reachability-scoped panic-safety,
//! interprocedural durability, lock-order) need to know *which function*
//! a line belongs to and *which functions it calls* — strictly more than
//! the lexer's line classification, strictly less than a real parse
//! tree. This module walks the lexer's blanked code (strings, chars and
//! comments already removed) with a small token window and extracts:
//!
//! * **items** — every `fn` with its module path and `impl` owner,
//!   qualified as `crate::module::Owner::name` (the crate segment is
//!   derived from the file path: `crates/serve/src/pool.rs` →
//!   `qd_serve::pool`);
//! * **calls** — direct calls (`helper(..)`, `path::to::helper(..)`)
//!   and method calls (`x.helper(..)`), attributed to the innermost
//!   enclosing `fn` in source order;
//! * **locks** — method calls named `lock()` with the receiver's final
//!   field segment as the lock's name (`shared.queue.lock()` acquires
//!   `queue`), which the lock-order rule consumes.
//!
//! Deliberate conservatism, in the direction that never panics and
//! never invents spurious *resolutions* (the graph layer records
//! unresolvable calls as such):
//!
//! * `fn` keywords inside macro invocation bodies (`macro_rules!`
//!   definitions included) do not open items — macro bodies are token
//!   soup, not items — but calls inside argument-position macro bodies
//!   (`assert!(x.step())`) are still recorded;
//! * attribute contents (`#[cfg(test)]`, `#[derive(..)]`) produce
//!   neither items nor calls;
//! * turbofish calls (`iter.collect::<Vec<_>>()`) are not recognized as
//!   calls — the token before `(` is `>` — which only ever *removes*
//!   edges from the graph;
//! * a parse that loses track (pathological const-generic braces, raw
//!   identifiers) degrades to fewer items/calls, never to a panic —
//!   property-tested against every file in this workspace.

use crate::lexer::LexedFile;

/// A call expression inside a `fn` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// 0-based source line of the opening parenthesis.
    pub line: usize,
    /// Occurrence index within the enclosing `fn` (shared counter with
    /// [`LockSite::seq`]), giving a total order of calls and
    /// acquisitions.
    pub seq: usize,
    /// The callee's final path segment (`append` in `vfs.append(..)`).
    pub name: String,
    /// Every path segment as written (`["vfs", "atomic_write"]`);
    /// length 1 for bare and method calls.
    pub path: Vec<String>,
    /// True for method-call syntax (`x.name(..)`).
    pub method: bool,
    /// For method calls: the final identifier of the receiver chain
    /// (`queue` in `shared.queue.lock()`), when the receiver is an
    /// identifier chain at all.
    pub receiver: Option<String>,
}

/// A `.lock()` acquisition site inside a `fn` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// 0-based source line.
    pub line: usize,
    /// Occurrence index within the enclosing `fn` (shared counter with
    /// [`Call::seq`]).
    pub seq: usize,
    /// The lock's name: the receiver chain's final field segment.
    pub lock: String,
}

/// One `fn` item with everything the graph layer needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// `crate::module::Owner::name` (see module docs for derivation).
    pub qualified: String,
    /// 0-based line of the body's opening brace.
    pub start: usize,
    /// 0-based line of the body's closing brace.
    pub end: usize,
    /// True when the item sits inside a `#[cfg(test)]` / `#[test]`
    /// region.
    pub in_test: bool,
    /// Calls made by this function, in source order.
    pub calls: Vec<Call>,
    /// Lock acquisitions made by this function, in source order.
    pub locks: Vec<LockSite>,
}

/// Whether a file is compiled only for tests, benches or examples —
/// Cargo's `tests/`, `benches/` and `examples/` directories. Items in
/// such files are marked `in_test`, so they neither seed nor propagate
/// reachability and stay out of the DOT dump, exactly like
/// `#[cfg(test)]` regions.
pub fn test_only_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

/// Derives the leading qualified-name segments for a file path.
///
/// `crates/<c>/src/<mods..>/<stem>.rs` maps onto the Cargo layout:
/// crate `qd_<c>` plus the module path (`lib`/`main`/`mod` stems are the
/// enclosing module itself). Any other path degrades to its segments
/// (minus `src` and a `lib`/`main` stem), so fixture trees still get
/// stable, matchable names.
pub fn path_segments(path: &str) -> Vec<String> {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let mut out = Vec::new();
    let crate_tail = segs
        .windows(3)
        .position(|w| w[0] == "crates" && w[2] == "src")
        .map(|at| {
            out.push(format!("qd_{}", segs[at + 1].replace('-', "_")));
            at + 3
        });
    let tail = match crate_tail {
        Some(from) => &segs[from..],
        None => &segs[..],
    };
    for (i, seg) in tail.iter().enumerate() {
        let is_last = i + 1 == tail.len();
        let seg = if is_last {
            seg.strip_suffix(".rs").unwrap_or(seg)
        } else {
            seg
        };
        if crate_tail.is_none() && seg == "src" {
            continue;
        }
        if is_last && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        out.push(seg.to_string());
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Keywords that look like call names but never are.
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "else"
            | "fn"
            | "impl"
            | "mod"
            | "use"
            | "let"
            | "pub"
            | "where"
            | "unsafe"
            | "dyn"
            | "break"
            | "continue"
            | "await"
            | "const"
            | "static"
            | "crate"
            | "super"
    )
}

/// Item-introducing keywords whose following `(` is a declaration, not
/// a call (`struct Foo(u32);`).
fn is_decl_keyword(word: &str) -> bool {
    matches!(word, "struct" | "enum" | "union" | "trait" | "type" | "fn")
}

#[derive(Debug)]
enum Pending {
    None,
    /// Saw `mod`, awaiting the module name.
    ModName,
    /// Saw `mod name`, awaiting `{` (inline) or `;` (out-of-line).
    ModNamed(String),
    /// Inside `impl .. {` header; idents collected at angle depth 0.
    ImplHeader {
        names: Vec<String>,
        angle: i32,
    },
    /// Inside a `trait .. {` header; the first ident is the trait name
    /// (default-method owner).
    TraitHeader(Option<String>),
    /// Saw `fn`, awaiting the function name.
    FnName,
    /// Inside a `fn` signature, awaiting the body `{` or a `;`.
    FnSig {
        name: String,
        line: usize,
        paren: i32,
        angle: i32,
        bracket: i32,
    },
}

#[derive(Debug)]
enum Scope {
    Mod(String, u32),
    Impl(String, u32),
}

struct OpenFn {
    item: usize,
    depth: u32,
    seq: usize,
}

struct Parser<'a> {
    file: &'a LexedFile,
    base: Vec<String>,
    items: Vec<FnItem>,
    recent: Vec<Tok>,
    pending: Pending,
    depth: u32,
    scopes: Vec<Scope>,
    open_fns: Vec<OpenFn>,
    /// Active macro-invocation body: (open delim, close delim, nesting).
    macro_body: Option<(char, char, u32)>,
    /// `#` seen, awaiting `[` to open an attribute.
    hash_pending: bool,
    /// Bracket depth of an active `#[..]` attribute.
    attr_depth: u32,
    prev_char: char,
}

impl<'a> Parser<'a> {
    fn new(path: &str, file: &'a LexedFile) -> Self {
        Parser {
            file,
            base: path_segments(path),
            items: Vec::new(),
            recent: Vec::new(),
            pending: Pending::None,
            depth: 0,
            scopes: Vec::new(),
            open_fns: Vec::new(),
            macro_body: None,
            hash_pending: false,
            attr_depth: 0,
            prev_char: ' ',
        }
    }

    fn push_tok(&mut self, tok: Tok) {
        self.recent.push(tok);
        if self.recent.len() > 32 {
            self.recent.remove(0);
        }
    }

    fn qualified(&self, name: &str) -> String {
        let mut segs: Vec<&str> = self.base.iter().map(String::as_str).collect();
        for scope in &self.scopes {
            match scope {
                Scope::Mod(n, _) | Scope::Impl(n, _) => segs.push(n),
            }
        }
        segs.push(name);
        segs.join("::")
    }

    fn in_test(&self, line: usize) -> bool {
        self.file.lines.get(line).is_some_and(|l| l.in_test)
    }

    fn handle_ident(&mut self, word: String, line: usize) {
        let structural = self.macro_body.is_none() && self.attr_depth == 0 && !self.hash_pending;
        match &mut self.pending {
            Pending::FnName => {
                self.pending = Pending::FnSig {
                    name: word.clone(),
                    line,
                    paren: 0,
                    angle: 0,
                    bracket: 0,
                };
            }
            Pending::ModName => {
                self.pending = Pending::ModNamed(word.clone());
            }
            Pending::TraitHeader(name) => {
                if name.is_none() {
                    *name = Some(word.clone());
                }
            }
            Pending::ImplHeader { names, angle } => {
                if *angle == 0 && word != "where" {
                    names.push(word.clone());
                }
                if word == "where" {
                    // Bounds after `where` never name the implementing
                    // type; freeze the collected names.
                    *angle = i32::MAX / 2;
                }
            }
            Pending::FnSig { .. } | Pending::ModNamed(_) | Pending::None => {
                if structural && matches!(self.pending, Pending::None) {
                    match word.as_str() {
                        "fn" => self.pending = Pending::FnName,
                        "mod" => self.pending = Pending::ModName,
                        "impl" => {
                            self.pending = Pending::ImplHeader {
                                names: Vec::new(),
                                angle: 0,
                            }
                        }
                        "trait" => self.pending = Pending::TraitHeader(None),
                        _ => {}
                    }
                }
            }
        }
        self.push_tok(Tok::Ident(word));
    }

    /// Walks `recent` backwards from a just-seen `(` and records a call
    /// (and lock site) on the innermost open `fn`, if the tokens before
    /// the parenthesis form a call expression.
    fn record_call(&mut self, line: usize) {
        let t = &self.recent;
        let Some(Tok::Ident(name)) = t.last() else {
            return;
        };
        if is_keyword(name) {
            return;
        }
        let name = name.clone();
        // Collect `seg::seg::name` going backwards.
        let mut path = vec![name.clone()];
        let mut i = t.len() - 1;
        while i >= 3 {
            if let (Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(seg)) =
                (&t[i - 1], &t[i - 2], &t[i - 3])
            {
                path.insert(0, seg.clone());
                i -= 3;
            } else {
                break;
            }
        }
        let before = if i == 0 { None } else { t.get(i - 1) };
        let (method, receiver) = match before {
            Some(Tok::Punct('.')) => {
                let recv = if i >= 2 {
                    match &t[i - 2] {
                        Tok::Ident(r) => Some(r.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                (true, recv)
            }
            Some(Tok::Ident(prev)) if is_decl_keyword(prev) => return,
            _ => (false, None),
        };
        if method && path.len() > 1 {
            return; // `.seg::name(` is not a shape we understand
        }
        let Some(frame) = self.open_fns.last_mut() else {
            return;
        };
        let seq = frame.seq;
        frame.seq += 1;
        let item = frame.item;
        if method && name == "lock" {
            if let Some(recv) = &receiver {
                self.items[item].locks.push(LockSite {
                    line,
                    seq,
                    lock: recv.clone(),
                });
            }
        }
        self.items[item].calls.push(Call {
            line,
            seq,
            name,
            path,
            method,
            receiver,
        });
    }

    /// True when `recent` ends in a macro-invocation head (`ident!` or
    /// `macro_rules! name`), meaning the delimiter now opening starts a
    /// macro body.
    fn macro_head(&self) -> bool {
        let t = &self.recent;
        let n = t.len();
        if n >= 2 {
            if let (Tok::Ident(_), Tok::Punct('!')) = (&t[n - 2], &t[n - 1]) {
                return true;
            }
        }
        if n >= 3 {
            if let (Tok::Ident(mr), Tok::Punct('!'), Tok::Ident(_)) =
                (&t[n - 3], &t[n - 2], &t[n - 1])
            {
                return mr == "macro_rules";
            }
        }
        false
    }

    fn open_brace(&mut self, line: usize) {
        // Complete whatever item header this brace closes over.
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::FnSig {
                name,
                line: sig_line,
                paren: 0,
                angle: _,
                bracket: 0,
            } => {
                self.depth += 1;
                let item = FnItem {
                    qualified: self.qualified(&name),
                    name,
                    start: sig_line,
                    end: line,
                    in_test: self.in_test(sig_line) || self.in_test(line),
                    calls: Vec::new(),
                    locks: Vec::new(),
                };
                self.items.push(item);
                self.open_fns.push(OpenFn {
                    item: self.items.len() - 1,
                    depth: self.depth,
                    seq: 0,
                });
                return;
            }
            Pending::ModNamed(name) => {
                self.depth += 1;
                self.scopes.push(Scope::Mod(name, self.depth));
                return;
            }
            Pending::TraitHeader(name) => {
                self.depth += 1;
                let owner = name.unwrap_or_else(|| "trait".to_string());
                self.scopes.push(Scope::Impl(owner, self.depth));
                return;
            }
            Pending::ImplHeader { names, .. } => {
                self.depth += 1;
                // `impl Trait for Type` names the type last; `impl Type`
                // names it only.
                if let Some(owner) = names.last() {
                    self.scopes.push(Scope::Impl(owner.clone(), self.depth));
                } else {
                    self.scopes
                        .push(Scope::Impl("impl".to_string(), self.depth));
                }
                return;
            }
            other => self.pending = other,
        }
        self.depth += 1;
    }

    fn close_brace(&mut self, line: usize) {
        if let Some(open) = self.open_fns.last() {
            if open.depth == self.depth {
                self.items[open.item].end = line;
                self.open_fns.pop();
            }
        }
        if let Some(scope) = self.scopes.last() {
            let (Scope::Mod(_, d) | Scope::Impl(_, d)) = scope;
            if *d == self.depth {
                self.scopes.pop();
            }
        }
        self.depth = self.depth.saturating_sub(1);
    }

    fn handle_punct(&mut self, c: char, line: usize) {
        // Attribute tracking runs before anything else: attribute
        // contents (`#[..]` / `#![..]`) are invisible to items and
        // calls alike.
        if self.hash_pending {
            match c {
                '!' => {
                    self.prev_char = c;
                    return; // inner attribute `#![..]`
                }
                '[' => {
                    self.hash_pending = false;
                    self.attr_depth = 1;
                    self.prev_char = c;
                    return;
                }
                _ => self.hash_pending = false,
            }
        }
        if self.attr_depth > 0 {
            match c {
                '[' => self.attr_depth += 1,
                ']' => self.attr_depth -= 1,
                _ => {}
            }
            self.prev_char = c;
            return;
        }
        if c == '#' {
            self.hash_pending = true;
            self.prev_char = c;
            return;
        }
        // Signature state machines consume their punctuation outright.
        match &mut self.pending {
            Pending::FnSig {
                paren,
                angle,
                bracket,
                ..
            } => {
                match c {
                    '(' => *paren += 1,
                    ')' => *paren -= 1,
                    '[' => *bracket += 1,
                    ']' => *bracket -= 1,
                    '<' => *angle += 1,
                    '>' if self.prev_char != '-' && *angle > 0 => *angle -= 1,
                    ';' if *paren == 0 && *bracket == 0 => {
                        // Trait-method declaration: no body, no item.
                        self.pending = Pending::None;
                    }
                    '{' if *paren == 0 && *bracket == 0 => self.open_brace(line),
                    '}' => self.close_brace(line),
                    _ => {}
                }
                self.push_tok(Tok::Punct(c));
                self.prev_char = c;
                return;
            }
            Pending::ImplHeader { angle, .. } => match c {
                '<' => *angle += 1,
                '>' if self.prev_char != '-' && *angle > 0 => *angle -= 1,
                ';' => self.pending = Pending::None,
                _ => {}
            },
            Pending::ModNamed(_) | Pending::TraitHeader(_) if c == ';' => {
                self.pending = Pending::None
            }
            Pending::FnName | Pending::ModName if c == ';' => self.pending = Pending::None,
            _ => {}
        }
        // Macro-body bookkeeping: delimiters are counted, item keywords
        // inside are already suppressed (see `handle_ident`), calls and
        // braces below still process so depth stays symmetric.
        if let Some((open, close, depth)) = &mut self.macro_body {
            if c == *open {
                *depth += 1;
            } else if c == *close {
                *depth -= 1;
                if *depth == 0 {
                    self.macro_body = None;
                }
            }
        } else if matches!(c, '(' | '[' | '{') && self.macro_head() {
            let close = match c {
                '(' => ')',
                '[' => ']',
                _ => '}',
            };
            self.macro_body = Some((c, close, 1));
        }
        match c {
            '{' => self.open_brace(line),
            '}' => self.close_brace(line),
            '(' => self.record_call(line),
            _ => {}
        }
        self.push_tok(Tok::Punct(c));
        self.prev_char = c;
    }
}

/// Parses `file` (as lexed from the source at `path`) into its `fn`
/// items. Never fails; see the module docs for what degrades instead.
pub fn parse_items(path: &str, file: &LexedFile) -> Vec<FnItem> {
    let mut p = Parser::new(path, file);
    let test_only = test_only_path(path);
    for (line_idx, line) in file.lines.iter().enumerate() {
        let mut word = String::new();
        for c in line.code.chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                continue;
            }
            if !word.is_empty() {
                p.handle_ident(std::mem::take(&mut word), line_idx);
            }
            if c.is_whitespace() {
                p.prev_char = ' ';
                continue;
            }
            p.handle_punct(c, line_idx);
        }
        if !word.is_empty() {
            p.handle_ident(word, line_idx);
        }
        p.prev_char = ' ';
    }
    if test_only {
        for item in &mut p.items {
            item.in_test = true;
        }
    }
    p.items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_items("crates/serve/src/pool.rs", &lex(src))
    }

    #[test]
    fn fn_items_carry_module_and_impl_owner() {
        let src = "\
mod inner {
    struct Pool;
    impl Pool {
        pub fn execute(&self) { self.run(); helper(); }
    }
    fn helper() {}
}
";
        let items = parse(src);
        let names: Vec<&str> = items.iter().map(|i| i.qualified.as_str()).collect();
        assert_eq!(
            names,
            [
                "qd_serve::pool::inner::Pool::execute",
                "qd_serve::pool::inner::helper"
            ]
        );
        let calls: Vec<&str> = items[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, ["run", "helper"]);
        assert!(items[0].calls[0].method);
        assert!(!items[0].calls[1].method);
    }

    #[test]
    fn trait_impls_attribute_to_the_implementing_type() {
        let src = "\
impl<T: Clone> Drop for Pool<T> where T: Send {
    fn drop(&mut self) { self.join(); }
}
";
        let items = parse(src);
        assert_eq!(items[0].qualified, "qd_serve::pool::Pool::drop");
    }

    #[test]
    fn qualified_calls_keep_their_path() {
        let items = parse("fn save() { vfs::atomic_write(fs, p, b); }\n");
        assert_eq!(items[0].calls[0].path, ["vfs", "atomic_write"]);
        assert_eq!(items[0].calls[0].name, "atomic_write");
    }

    #[test]
    fn lock_sites_name_the_receiver_field() {
        let src = "\
fn drain(shared: &Shared) {
    let a = shared.queue.lock();
    let b = slots.lock();
    let c = make().lock();
}
";
        let items = parse(src);
        let locks: Vec<&str> = items[0].locks.iter().map(|l| l.lock.as_str()).collect();
        // `make().lock()` has no identifier receiver and is dropped.
        assert_eq!(locks, ["queue", "slots"]);
        assert!(items[0].locks[0].seq < items[0].locks[1].seq);
    }

    #[test]
    fn macro_bodies_hide_fn_items_but_not_calls() {
        let src = "\
macro_rules! gen {
    () => { fn hidden() {} };
}
fn real() {
    assert!(x.step());
    gen!();
}
";
        let items = parse(src);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["real"]);
        assert!(items[0].calls.iter().any(|c| c.name == "step"));
    }

    #[test]
    fn attributes_produce_no_calls() {
        let src = "\
#[derive(Debug, Clone)]
struct S;
#[cfg(feature = \"x\")]
fn gated() { real_call(); }
";
        let items = parse(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "real_call");
    }

    #[test]
    fn nested_generics_and_array_types_in_signatures() {
        let src = "\
fn complicated<T: IntoIterator<Item = Vec<u8>>>(t: T, buf: [u8; 4]) -> Option<Vec<u8>> {
    inner(t)
}
";
        let items = parse(src);
        assert_eq!(items[0].name, "complicated");
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "inner");
    }

    #[test]
    fn trait_declarations_do_not_open_items() {
        let src = "\
trait Api {
    fn declared(&self) -> u32;
    fn provided(&self) -> u32 { self.declared() }
}
";
        let items = parse(src);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["provided"]);
        assert_eq!(items[0].qualified, "qd_serve::pool::Api::provided");
    }

    #[test]
    fn test_regions_mark_items() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { real(); }
}
";
        let items = parse(src);
        assert!(!items[0].in_test);
        assert!(items[1].in_test);
    }

    #[test]
    fn path_segments_map_crate_layout() {
        assert_eq!(
            path_segments("crates/serve/src/executor.rs"),
            ["qd_serve", "executor"]
        );
        assert_eq!(path_segments("crates/core/src/lib.rs"), ["qd_core"]);
        assert_eq!(
            path_segments("fixtures/graph/entry.rs"),
            ["fixtures", "graph", "entry"]
        );
        assert_eq!(path_segments("src/lib.rs"), Vec::<String>::new());
    }
}
