//! Orchestration: walk files, apply scoped rules, honor suppressions.
//!
//! The engine owns everything that is not a rule: directory walking
//! (deterministic, sorted order), path scoping from the
//! [`Config`], and the suppression protocol. A finding
//! survives only if no `// qd-lint: allow(<rule>)` annotation covers
//! its line — either on the line itself or in a comment-only line block
//! immediately above it (the shape rustfmt produces for long lines).
//!
//! Two analysis modes exist:
//!
//! * [`check_source`] — single-file, local rules only. This is the
//!   stable unit-test surface; it has no call graph, so `durability`
//!   runs in its original intra-function form and the interprocedural
//!   rules contribute nothing.
//! * [`analyze`] / [`run`] — workspace mode. All files are lexed and
//!   parsed into a [`Graph`]; local rules run per file (except
//!   `durability`, which is superseded by its interprocedural form),
//!   then the graph-backed rules add reachability-scoped panic-safety,
//!   component-wide durability, and lock-order findings. Local findings
//!   win dedup at a `(path, line, rule)` collision, so path-scoped
//!   diagnostics keep their original messages and the graph only adds
//!   *new* locations.

use crate::config::Config;
use crate::graph::{Graph, Reach};
use crate::interproc;
use crate::items::parse_items;
use crate::lexer::{lex, LexedFile};
use crate::rules::{self, RULES};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: a rule violated at a file location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as scanned (relative to the invocation root).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's name.
    pub rule: String,
    /// What went wrong.
    pub message: String,
    /// Witness call chain (qualified names, entry first) for
    /// interprocedural findings; empty for local ones.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        if self.chain.len() > 1 {
            write!(f, " [via {}]", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Analyzes one file's source under every in-scope local rule.
///
/// `path` is the file's config-relative path (`/`-separated); it decides
/// rule scoping and is echoed into diagnostics.
pub fn check_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    if config.is_excluded(path) {
        return Vec::new();
    }
    let file = lex(source);
    let mut out = Vec::new();
    for rule in RULES {
        if !config.scope(rule.name).applies_to(path) {
            continue;
        }
        for (line0, message) in rules::check(rule.name, &file) {
            if suppressed(&file, line0, rule.name) {
                continue;
            }
            out.push(Diagnostic {
                path: path.to_string(),
                line: line0 + 1,
                rule: rule.name.to_string(),
                message,
                chain: Vec::new(),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// A full workspace analysis: diagnostics plus the call graph and
/// reachability they were computed against (for `--graph dot`).
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All surviving findings, sorted by `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// The linked call graph.
    pub graph: Graph,
    /// Entry-point reachability over `graph`.
    pub reach: Reach,
}

/// Workspace-mode analysis over pre-read `(path, source)` pairs.
///
/// Local rules run per file — except `durability`, whose
/// interprocedural form supersedes the single-function check — then the
/// call graph is built and the graph-backed rules run. Suppressions
/// apply uniformly; at a `(path, line, rule)` collision the local
/// finding wins.
pub fn analyze(files: &[(String, String)], config: &Config) -> Analysis {
    let mut lexed: BTreeMap<String, LexedFile> = BTreeMap::new();
    let mut parsed: Vec<(String, Vec<crate::items::FnItem>)> = Vec::new();
    let mut diagnostics = Vec::new();
    for (path, source) in files {
        if config.is_excluded(path) {
            continue;
        }
        let file = lex(source);
        for rule in RULES {
            if rule.name == "durability" || !config.scope(rule.name).applies_to(path) {
                continue;
            }
            for (line0, message) in rules::check(rule.name, &file) {
                if suppressed(&file, line0, rule.name) {
                    continue;
                }
                diagnostics.push(Diagnostic {
                    path: path.clone(),
                    line: line0 + 1,
                    rule: rule.name.to_string(),
                    message,
                    chain: Vec::new(),
                });
            }
        }
        parsed.push((path.clone(), parse_items(path, &file)));
        lexed.insert(path.clone(), file);
    }
    let graph = Graph::build(&parsed);
    let reach = graph.reachability(&config.entrypoints);

    let mut findings =
        interproc::reachable_panics(&graph, &reach, &lexed, &config.scope("panic-safety"));
    findings.extend(interproc::durability(
        &graph,
        &lexed,
        &config.scope("durability"),
    ));
    findings.extend(interproc::lock_order(
        &graph,
        &lexed,
        &config.scope("lock-order"),
    ));

    let mut seen: BTreeSet<(String, usize, String)> = diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.clone()))
        .collect();
    for f in findings {
        let key = (f.path.clone(), f.line + 1, f.rule.to_string());
        if seen.contains(&key) {
            continue;
        }
        if let Some(file) = lexed.get(&f.path) {
            if suppressed(file, f.line, f.rule) {
                continue;
            }
        }
        seen.insert(key);
        diagnostics.push(Diagnostic {
            path: f.path,
            line: f.line + 1,
            rule: f.rule.to_string(),
            message: f.message,
            chain: f.chain,
        });
    }
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    Analysis {
        diagnostics,
        graph,
        reach,
    }
}

/// Whether `rule` is allowed at 0-based `line`: an allow annotation on
/// the line itself, or in the run of comment-only/blank lines directly
/// above it.
fn suppressed(file: &LexedFile, line: usize, rule: &str) -> bool {
    let Some(at) = file.lines.get(line) else {
        return false;
    };
    if allows(&at.comment, rule) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let above = &file.lines[i];
        if !above.code.trim().is_empty() {
            return false;
        }
        if allows(&above.comment, rule) {
            return true;
        }
        if above.comment.trim().is_empty() && above.code.trim().is_empty() {
            // Blank lines terminate the annotation block: an allow
            // separated by whitespace does not leak downward.
            return false;
        }
    }
    false
}

/// Whether a comment's `qd-lint: allow(..)` groups name `rule`.
fn allows(comment: &str, rule: &str) -> bool {
    rules::allow_names(comment).iter().any(|r| r == rule)
}

/// Recursively collects `.rs` files under `roots`, sorted for
/// deterministic diagnostics, skipping globally excluded paths.
///
/// # Errors
///
/// Propagates directory-walk I/O errors (permission, racing deletes).
pub fn collect_files(roots: &[PathBuf], config: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for root in roots {
        walk(root, config, &mut files)?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(path: &Path, config: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let rel = rel_str(path);
    if config.is_excluded(&rel) {
        return Ok(());
    }
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            walk(&entry, config, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// `/`-separated relative-ish path string for glob matching.
fn rel_str(path: &Path) -> String {
    let s = path.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

/// Reads every `.rs` file under `roots` into `(relative path, source)`
/// pairs in deterministic order, skipping excluded paths.
///
/// # Errors
///
/// Propagates file-read and directory-walk I/O errors.
pub fn load_files(roots: &[PathBuf], config: &Config) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for file in collect_files(roots, config)? {
        let source = std::fs::read_to_string(&file)?;
        out.push((rel_str(&file), source));
    }
    Ok(out)
}

/// Runs the full workspace analysis over `roots` with `config`.
///
/// # Errors
///
/// Propagates file-read and directory-walk I/O errors.
pub fn run(roots: &[PathBuf], config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let files = load_files(roots, config)?;
    Ok(analyze(&files, config).diagnostics)
}

/// Serializes diagnostics as a deterministic JSON array (sorted as
/// emitted, keys in fixed order), suitable for `--format json`.
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"path\":");
        json_string(&mut out, &d.path);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, &d.rule);
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push_str(",\"chain\":[");
        for (j, link) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_string(&mut out, link);
        }
        out.push_str("]}");
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn everywhere() -> Config {
        Config::default()
    }

    #[test]
    fn same_line_and_preceding_line_suppressions_work() {
        let src = "\
fn f() {
    let a = x.unwrap(); // qd-lint: allow(panic-safety) -- invariant: x is Some
    // qd-lint: allow(panic-safety) -- justified above
    let b = y.unwrap();
    let c = z.unwrap();
}
";
        let diags = check_source("crates/core/src/x.rs", src, &everywhere());
        let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic-safety").collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].line, 5);
    }

    #[test]
    fn blank_lines_break_suppression_blocks() {
        let src = "\
// qd-lint: allow(panic-safety)

fn f() { x.unwrap(); }
";
        let diags = check_source("a.rs", src, &everywhere());
        assert_eq!(diags.iter().filter(|d| d.rule == "panic-safety").count(), 1);
    }

    #[test]
    fn excluded_paths_produce_nothing() {
        let mut config = everywhere();
        config.exclude.push("vendor/**".into());
        let diags = check_source("vendor/x/lib.rs", "fn f() { x.unwrap(); }", &config);
        assert!(diags.is_empty());
    }

    #[test]
    fn multiple_allows_in_one_comment() {
        let src = "use std::collections::HashMap; // qd-lint: allow(order-stability, \
                   determinism)\n";
        let diags = check_source("a.rs", src, &everywhere());
        assert!(
            diags.iter().all(|d| d.rule != "order-stability"),
            "{diags:?}"
        );
    }

    fn serving_config() -> Config {
        Config::parse(
            "[entrypoints]\nserving = [\"**::entry::serve\"]\n\
             [rules.panic-safety]\ninclude = [\"crates/a/src/**\"]\n\
             [rules.lock-order]\ninclude = [\"**/locks/**\"]\n",
        )
        .expect("test config parses")
    }

    #[test]
    fn analyze_reports_reachable_panics_with_chains() {
        let files = vec![
            (
                "crates/a/src/entry.rs".to_string(),
                "pub fn serve() { helper_mid(); }\n".to_string(),
            ),
            (
                "crates/b/src/helpers.rs".to_string(),
                "pub fn helper_mid() { helper_leaf(); }\n\
                 pub fn helper_leaf() -> u32 { maybe().unwrap() }\n\
                 pub fn cold_leaf() -> u32 { maybe().unwrap() }\n"
                    .to_string(),
            ),
        ];
        let analysis = analyze(&files, &serving_config());
        let panics: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == "panic-safety")
            .collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].path, "crates/b/src/helpers.rs");
        assert_eq!(panics[0].line, 2);
        assert_eq!(
            panics[0].chain,
            [
                "qd_a::entry::serve",
                "qd_b::helpers::helper_mid",
                "qd_b::helpers::helper_leaf"
            ]
        );
        let shown = panics[0].to_string();
        assert!(shown.contains("[via qd_a::entry::serve -> "), "{shown}");
    }

    #[test]
    fn analyze_respects_suppressions_on_reachable_lines() {
        let files = vec![
            (
                "crates/a/src/entry.rs".to_string(),
                "pub fn serve() { helper_leaf(); }\n".to_string(),
            ),
            (
                "crates/b/src/helpers.rs".to_string(),
                "pub fn helper_leaf() -> u32 {\n    \
                 // qd-lint: allow(panic-safety) -- fixture invariant\n    \
                 maybe().unwrap()\n}\n"
                    .to_string(),
            ),
        ];
        let analysis = analyze(&files, &serving_config());
        assert!(
            analysis
                .diagnostics
                .iter()
                .all(|d| d.rule != "panic-safety"),
            "{:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn analyze_flags_inverted_lock_order_in_both_fns() {
        let files = vec![(
            "crates/a/src/locks/order.rs".to_string(),
            "pub fn forward(s: &S) {\n    \
             let a = s.alpha.lock();\n    \
             let b = s.beta.lock();\n}\n\
             pub fn backward(s: &S) {\n    \
             let b = s.beta.lock();\n    \
             let a = s.alpha.lock();\n}\n"
                .to_string(),
        )];
        let analysis = analyze(&files, &serving_config());
        let locks: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == "lock-order")
            .collect();
        assert_eq!(locks.len(), 2, "{locks:?}");
        assert_eq!(locks[0].line, 3);
        assert_eq!(locks[1].line, 7);
        assert!(
            locks[0].message.contains("opposite order"),
            "{}",
            locks[0].message
        );
    }

    #[test]
    fn analyze_durability_satisfied_across_functions() {
        let good = vec![(
            "crates/a/src/checkpoint.rs".to_string(),
            "pub fn save() {\n    let f = File::create(tmp);\n    finish(f);\n}\n\
             fn finish(f: File) {\n    f.sync_all();\n    fs::rename(tmp, dst);\n}\n"
                .to_string(),
        )];
        let mut config = serving_config();
        config
            .rule_scopes
            .entry("durability".into())
            .or_default()
            .include
            .push("**/checkpoint.rs".into());
        let analysis = analyze(&good, &config);
        assert!(
            analysis.diagnostics.iter().all(|d| d.rule != "durability"),
            "{:?}",
            analysis.diagnostics
        );
        let bad = vec![(
            "crates/a/src/checkpoint.rs".to_string(),
            "pub fn save() {\n    let f = File::create(tmp);\n    finish(f);\n}\n\
             fn finish(f: File) {\n    f.sync_all();\n}\n"
                .to_string(),
        )];
        let analysis = analyze(&bad, &config);
        let dur: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.rule == "durability")
            .collect();
        assert_eq!(dur.len(), 1, "{dur:?}");
        assert_eq!(dur[0].line, 2);
        assert!(
            dur[0].message.contains("missing rename"),
            "{}",
            dur[0].message
        );
    }

    #[test]
    fn json_output_is_deterministic_and_escaped() {
        let diags = vec![Diagnostic {
            path: "a\"b.rs".into(),
            line: 3,
            rule: "panic-safety".into(),
            message: "tab\there".into(),
            chain: vec!["a::b".into()],
        }];
        let json = to_json(&diags);
        assert_eq!(json, to_json(&diags));
        assert!(json.contains("\"path\":\"a\\\"b.rs\""), "{json}");
        assert!(json.contains("\"message\":\"tab\\there\""), "{json}");
        assert!(json.contains("\"chain\":[\"a::b\"]"), "{json}");
        assert_eq!(to_json(&[]), "[]\n");
    }
}
