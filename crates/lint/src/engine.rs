//! Orchestration: walk files, apply scoped rules, honor suppressions.
//!
//! The engine owns everything that is not a rule: directory walking
//! (deterministic, sorted order), path scoping from the
//! [`Config`], and the suppression protocol. A finding
//! survives only if no `// qd-lint: allow(<rule>)` annotation covers
//! its line — either on the line itself or in a comment-only line block
//! immediately above it (the shape rustfmt produces for long lines).

use crate::config::Config;
use crate::lexer::{lex, LexedFile};
use crate::rules::{self, RULES};
use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: a rule violated at a file location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as scanned (relative to the invocation root).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's name.
    pub rule: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Analyzes one file's source under every in-scope rule.
///
/// `path` is the file's config-relative path (`/`-separated); it decides
/// rule scoping and is echoed into diagnostics.
pub fn check_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    if config.is_excluded(path) {
        return Vec::new();
    }
    let file = lex(source);
    let mut out = Vec::new();
    for rule in RULES {
        if !config.scope(rule.name).applies_to(path) {
            continue;
        }
        for (line0, message) in rules::check(rule.name, &file) {
            if suppressed(&file, line0, rule.name) {
                continue;
            }
            out.push(Diagnostic {
                path: path.to_string(),
                line: line0 + 1,
                rule: rule.name.to_string(),
                message,
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Whether `rule` is allowed at 0-based `line`: an allow annotation on
/// the line itself, or in the run of comment-only/blank lines directly
/// above it.
fn suppressed(file: &LexedFile, line: usize, rule: &str) -> bool {
    if allows(&file.lines[line].comment, rule) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let above = &file.lines[i];
        if !above.code.trim().is_empty() {
            return false;
        }
        if allows(&above.comment, rule) {
            return true;
        }
        if above.comment.trim().is_empty() && above.code.trim().is_empty() {
            // Blank lines terminate the annotation block: an allow
            // separated by whitespace does not leak downward.
            return false;
        }
    }
    false
}

/// Parses every `qd-lint: allow(a, b)` group in a comment.
fn allows(comment: &str, rule: &str) -> bool {
    let mut rest = comment;
    while let Some(at) = rest.find("qd-lint: allow(") {
        let args = &rest[at + "qd-lint: allow(".len()..];
        if let Some(end) = args.find(')') {
            if args[..end].split(',').any(|r| r.trim() == rule) {
                return true;
            }
            rest = &args[end + 1..];
        } else {
            return false;
        }
    }
    false
}

/// Recursively collects `.rs` files under `roots`, sorted for
/// deterministic diagnostics, skipping globally excluded paths.
///
/// # Errors
///
/// Propagates directory-walk I/O errors (permission, racing deletes).
pub fn collect_files(roots: &[PathBuf], config: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for root in roots {
        walk(root, config, &mut files)?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(path: &Path, config: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let rel = rel_str(path);
    if config.is_excluded(&rel) {
        return Ok(());
    }
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            walk(&entry, config, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// `/`-separated relative-ish path string for glob matching.
fn rel_str(path: &Path) -> String {
    let s = path.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

/// Runs the full analysis over `roots` with `config`.
///
/// # Errors
///
/// Propagates file-read and directory-walk I/O errors.
pub fn run(roots: &[PathBuf], config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    for file in collect_files(roots, config)? {
        let source = std::fs::read_to_string(&file)?;
        diagnostics.extend(check_source(&rel_str(&file), &source, config));
    }
    Ok(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn everywhere() -> Config {
        Config::default()
    }

    #[test]
    fn same_line_and_preceding_line_suppressions_work() {
        let src = "\
fn f() {
    let a = x.unwrap(); // qd-lint: allow(panic-safety) -- invariant: x is Some
    // qd-lint: allow(panic-safety) -- justified above
    let b = y.unwrap();
    let c = z.unwrap();
}
";
        let diags = check_source("crates/core/src/x.rs", src, &everywhere());
        let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic-safety").collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].line, 5);
    }

    #[test]
    fn blank_lines_break_suppression_blocks() {
        let src = "\
// qd-lint: allow(panic-safety)

fn f() { x.unwrap(); }
";
        let diags = check_source("a.rs", src, &everywhere());
        assert_eq!(diags.iter().filter(|d| d.rule == "panic-safety").count(), 1);
    }

    #[test]
    fn excluded_paths_produce_nothing() {
        let mut config = everywhere();
        config.exclude.push("vendor/**".into());
        let diags = check_source("vendor/x/lib.rs", "fn f() { x.unwrap(); }", &config);
        assert!(diags.is_empty());
    }

    #[test]
    fn multiple_allows_in_one_comment() {
        let src = "use std::collections::HashMap; // qd-lint: allow(order-stability, \
                   determinism)\n";
        let diags = check_source("a.rs", src, &everywhere());
        assert!(
            diags.iter().all(|d| d.rule != "order-stability"),
            "{diags:?}"
        );
    }
}
