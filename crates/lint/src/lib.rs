//! `qd-lint` — the workspace static analyzer behind QuickDrop's
//! reproducibility and durability guarantees.
//!
//! # Why a bespoke linter
//!
//! The workspace's headline properties — bit-for-bit kill-and-resume,
//! deterministic simulation, guarded rollback — rest on invariants the
//! Rust compiler cannot see: *no wall-clock or unseeded randomness in
//! simulated paths*, *no iteration-order-dependent float accumulation*,
//! *no panics in serving loops*, *atomic tmp+fsync+rename for every
//! durable write*, *one global lock order*. Clippy has no rules for
//! these, and they regress silently: a stray `Instant::now` compiles,
//! passes every test, and quietly breaks resume determinism a month
//! later.
//!
//! `qd-lint` encodes them as eight rule families over a
//! [lexer](mod@lexer) that knows enough Rust to never match inside string
//! literals, char literals or (nested) comments, and to skip
//! `#[cfg(test)]` regions. Scoping lives in `qd-lint.toml`
//! ([`Config`]); deliberate exceptions are annotated in-source with
//! `// qd-lint: allow(<rule>) -- <justification>` and reviewed like any
//! other diff line (and a typoed rule name in an `allow` is itself a
//! finding, so suppressions cannot silently rot).
//!
//! # The call graph
//!
//! Token-level rules see one file at a time, which made "no panics in
//! serving paths" a *path-glob* property: a helper moved out of
//! `crates/serve` silently left the rule's scope. v2 adds an
//! [item parser](mod@items) over the same lexer that extracts every
//! `fn` (with its impl/trait owner and module path), its calls and its
//! lock acquisitions; [`graph`] links those into a workspace call graph
//! with conservative name-based resolution and computes reachability
//! from the entry-point sets declared in `qd-lint.toml`'s
//! `[entrypoints]` table. [`interproc`] builds three rule families on
//! top: reachability-scoped panic-safety (with the witness call chain
//! in every diagnostic), durability checked across a function's
//! reachable component, and lock-order consistency along call paths.
//! `--graph dot` dumps the graph deterministically; `--format json`
//! emits findings machine-readably.
//!
//! # The rule table
//!
//! This doc test pins the exact `--list-rules` output; if a rule is
//! added, renamed or rescoped, it fails until the table here and the
//! one in `README.md` are updated to match.
//!
//! ```
//! let expected = "\
//! rule                | scope                                            | invariant
//! determinism         | everywhere except bench / tests / examples       | no wall-clock, unseeded RNG or env reads in simulated paths
//! order-stability     | fed / core / serve / unlearn / chaos sources     | no HashMap/HashSet where iteration order feeds aggregation
//! panic-safety        | serving scopes + fns reachable from entry points | no unwrap/expect/panic!/literal indexing in serving paths
//! durability          | durable modules, checked across the call graph   | creates/writes paired with fsync (+rename) in the reachable component
//! lock-order          | serve sources                                    | no two locks acquired in inconsistent order along any call path
//! vfs-discipline      | core / serve sources outside the Vfs impl        | no direct std::fs calls; all storage I/O goes through qd_core::vfs
//! suppression-hygiene | workspace-wide                                   | qd-lint: allow(..) must name known rules
//! unsafe-hygiene      | workspace-wide                                   | no unsafe code anywhere
//! ";
//! assert_eq!(qd_lint::rules::render_table(), expected);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod graph;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use engine::{analyze, check_source, Analysis, Diagnostic};
