//! `qd-lint` — the workspace static analyzer behind QuickDrop's
//! reproducibility and durability guarantees.
//!
//! # Why a bespoke linter
//!
//! The workspace's headline properties — bit-for-bit kill-and-resume,
//! deterministic simulation, guarded rollback — rest on invariants the
//! Rust compiler cannot see: *no wall-clock or unseeded randomness in
//! simulated paths*, *no iteration-order-dependent float accumulation*,
//! *no panics in serving loops*, *atomic tmp+fsync+rename for every
//! durable write*. Clippy has no rules for these, and they regress
//! silently: a stray `Instant::now` compiles, passes every test, and
//! quietly breaks resume determinism a month later.
//!
//! `qd-lint` encodes them as six token-level rule families over a
//! [lexer](mod@lexer) that knows enough Rust to never match inside string
//! literals, char literals or (nested) comments, and to skip
//! `#[cfg(test)]` regions. Scoping lives in `qd-lint.toml`
//! ([`Config`]); deliberate exceptions are annotated in-source with
//! `// qd-lint: allow(<rule>) -- <justification>` and reviewed like any
//! other diff line.
//!
//! # The rule table
//!
//! This doc test pins the exact `--list-rules` output; if a rule is
//! added, renamed or rescoped, it fails until the table here and the
//! one in `README.md` are updated to match.
//!
//! ```
//! let expected = "\
//! rule            | scope                                      | invariant
//! determinism     | everywhere except bench / tests / examples | no wall-clock, unseeded RNG or env reads in simulated paths
//! order-stability | fed / core / unlearn sources               | no HashMap/HashSet where iteration order feeds aggregation
//! panic-safety    | core / fed / net / unlearn sources         | no unwrap/expect/panic!/literal indexing in serving paths
//! durability      | checkpoint and journal modules             | File::create paired with tmp + fsync + rename in the same fn
//! vfs-discipline  | core / serve sources outside the Vfs impl  | no direct std::fs calls; all storage I/O goes through qd_core::vfs
//! unsafe-hygiene  | workspace-wide                             | no unsafe code anywhere
//! ";
//! assert_eq!(qd_lint::rules::render_table(), expected);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use engine::{check_source, Diagnostic};
