//! A lightweight Rust lexer for line-oriented static analysis.
//!
//! The rule engine never needs a full parse tree — every invariant it
//! checks is a statement about *tokens in executable code*. What it does
//! need, and what naive `grep`-style scanning gets wrong, is to know
//! which bytes of a source file are code at all. This lexer classifies
//! each line into:
//!
//! * **code** — the line's source with string literals, character
//!   literals and comments blanked out, so token searches cannot match
//!   inside `"thread_rng"` or `// unwrap()`;
//! * **comment** — the comment text of the line, searched only for
//!   `qd-lint: allow(...)` suppression annotations;
//! * **test membership** — whether the line sits inside a
//!   `#[cfg(test)]` or `#[test]` item, so rules scoped to production
//!   code skip test modules without needing per-directory layout rules.
//!
//! It also records the line span of every `fn` body (including nested
//! functions), which the durability rule uses to check that a
//! `File::create` and its matching `sync_all`/`rename` live in the same
//! function.
//!
//! The lexer understands the token shapes that matter for not
//! mis-classifying bytes: nested block comments, string escapes, raw
//! strings with arbitrary `#` fencing, byte strings, and the
//! char-literal/lifetime ambiguity (`'a'` vs `<'a>`).

/// One source line, classified.
#[derive(Debug, Clone, Default)]
pub struct LexedLine {
    /// Source text with strings, chars and comments blanked out.
    pub code: String,
    /// Comment text (line and block) appearing on this line.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

/// A fully classified source file.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// The file's lines in order.
    pub lines: Vec<LexedLine>,
    /// Inclusive 0-based line spans of every `fn` body, innermost last
    /// for nested functions.
    pub fn_spans: Vec<(usize, usize)>,
}

impl LexedFile {
    /// The innermost `fn` body span containing 0-based line `line`, if
    /// any (the narrowest enclosing span).
    pub fn enclosing_fn(&self, line: usize) -> Option<(usize, usize)> {
        self.fn_spans
            .iter()
            .filter(|&&(s, e)| s <= line && line <= e)
            .min_by_key(|&&(s, e)| e - s)
            .copied()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

fn is_word(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Classifies `src` line by line. Never fails: unterminated literals or
/// comments simply classify the remainder of the file as non-code,
/// which is the conservative direction for every rule.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<LexedLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;

    let flush = |code: &mut String, comment: &mut String, lines: &mut Vec<LexedLine>| {
        lines.push(LexedLine {
            code: std::mem::take(code),
            comment: std::mem::take(comment),
            in_test: false,
        });
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush(&mut code, &mut comment, &mut lines);
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // r"..." / r#"..."# / br#"..."# — count the fencing
                    // hashes between the prefix and the opening quote.
                    let mut j = i;
                    while chars[j] != '#' && chars[j] != '"' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    state = State::RawStr(hashes);
                    i = j + 1; // past the opening quote
                } else if c == '\'' && (i == 0 || !is_word(chars[i - 1])) {
                    // Char literal or lifetime. A lifetime is `'` followed
                    // by an identifier with no closing quote right after.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += if chars[i] == '\\' { 2 } else { 1 };
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3; // plain char literal like 'a'
                    } else {
                        code.push('\''); // lifetime
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — except a line
                    // continuation (`\` + newline), whose newline must
                    // still flush the line or every later diagnostic
                    // would be off by one.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else {
                    if c == '"' {
                        state = State::Code;
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush(&mut code, &mut comment, &mut lines);
    }

    let mut file = LexedFile {
        lines,
        fn_spans: Vec::new(),
    };
    mark_regions(&mut file);
    file
}

/// True when the raw-string prefix `r`/`br` starts at `chars[i]` and is
/// not the tail of a longer identifier (`attr"x"` is not a raw string).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && is_word(chars[i - 1]) {
        return false;
    }
    let rest = &chars[i..];
    let after_prefix = match rest {
        ['r', ..] => &rest[1..],
        ['b', 'r', ..] => &rest[2..],
        _ => return false,
    };
    let mut j = 0;
    while after_prefix.get(j) == Some(&'#') {
        j += 1;
    }
    after_prefix.get(j) == Some(&'"')
}

/// True when the `"` at `chars[i]` is followed by `hashes` fence hashes.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Second pass over the blanked code: brace-depth tracking to mark
/// `#[cfg(test)]` / `#[test]` item bodies and record `fn` body spans.
fn mark_regions(file: &mut LexedFile) {
    let mut depth: u32 = 0;
    // Sliding window of recent non-whitespace code chars, for attribute
    // detection without a token stream.
    let mut window = String::new();
    // Identifier accumulator, for keyword detection at word boundaries.
    let mut word = String::new();
    let mut pending_test = false;
    let mut pending_fn = false;
    let mut test_stack: Vec<u32> = Vec::new();
    let mut fn_stack: Vec<(usize, u32)> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();

    for (idx, line) in file.lines.iter_mut().enumerate() {
        let mut line_in_test = !test_stack.is_empty();
        for c in line.code.chars() {
            if c.is_whitespace() {
                if word == "fn" {
                    pending_fn = true;
                }
                word.clear();
                continue;
            }
            window.push(c);
            if window.len() > 16 {
                let cut = window.len() - 16;
                window.drain(..cut);
            }
            if is_word(c) {
                word.push(c);
            } else {
                if word == "fn" {
                    pending_fn = true;
                }
                word.clear();
            }
            if window.ends_with("#[cfg(test") || window.ends_with("#[test]") {
                pending_test = true;
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                        line_in_test = true;
                    }
                    if pending_fn {
                        fn_stack.push((idx, depth));
                        pending_fn = false;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    if let Some(&(start, d)) = fn_stack.last() {
                        if d == depth {
                            spans.push((start, idx));
                            fn_stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // A `;` before any `{` ends the item the pending
                    // attribute or signature belonged to (`#[cfg(test)]
                    // use x;`, trait method declarations).
                    pending_test = false;
                    pending_fn = false;
                }
                _ => {}
            }
        }
        if word == "fn" {
            pending_fn = true;
        }
        word.clear();
        line.in_test = line_in_test || !test_stack.is_empty();
    }
    // Unterminated spans (syntax errors) are dropped rather than guessed.
    file.fn_spans = spans;
}

/// Finds `needle` in `haystack` at identifier boundaries: the characters
/// on either side of the match must not be word characters. Needles may
/// themselves contain punctuation (`Instant::now`, `.unwrap()`).
pub fn find_token(haystack: &str, needle: &str) -> bool {
    let h: Vec<char> = haystack.chars().collect();
    let n: Vec<char> = needle.chars().collect();
    if n.is_empty() || h.len() < n.len() {
        return false;
    }
    for start in 0..=(h.len() - n.len()) {
        if h[start..start + n.len()] != n[..] {
            continue;
        }
        let left_ok = start == 0 || !is_word(h[start - 1]) || !is_word(n[0]);
        let end = start + n.len();
        let right_ok = end == h.len() || !is_word(h[end]) || !is_word(n[n.len() - 1]);
        if left_ok && right_ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = lex("let x = \"unsafe unwrap()\"; // thread_rng\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("thread_rng"));
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let f = lex("let s = \"first \\\n    second\";\nx.unwrap();\n");
        assert_eq!(f.lines.len(), 3, "continuation must not swallow a line");
        assert!(f.lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let f = lex("/* a /* b */ still comment */ let z = unsafe_token;\n");
        assert!(f.lines[0].code.contains("unsafe_token"));
        assert!(f.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn raw_strings_with_hashes_are_skipped() {
        let f = lex("let p = r#\"panic!(\"inner\")\"#; let q = 2;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("let q = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let n = '\\n';\n");
        assert!(f.lines[0].code.contains("fn f<'a>"));
        assert!(!f.lines[1].code.contains('x'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
fn real() { body(); }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn after() {}
";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "\
fn outer() {
    let a = 1;
    fn inner() {
        let b = 2;
    }
}
";
        let f = lex(src);
        assert!(f.fn_spans.contains(&(0, 5)));
        assert!(f.fn_spans.contains(&(2, 4)));
        assert_eq!(f.enclosing_fn(3), Some((2, 4)));
        assert_eq!(f.enclosing_fn(1), Some((0, 5)));
    }

    #[test]
    fn token_search_respects_word_boundaries() {
        assert!(find_token("let x = unsafe { 1 };", "unsafe"));
        assert!(!find_token("let unsafe_ish = 1;", "unsafe"));
        assert!(find_token("std::env::var(\"X\")", "env::var"));
        assert!(!find_token("my_senv::var(1)", "env::var"));
    }
}
