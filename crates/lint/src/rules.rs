//! The rule registry: six invariant families over lexed source.
//!
//! Each rule is a pure function from a [`LexedFile`] to diagnostics
//! `(line, message)`; scoping (which files a rule sees) and suppression
//! (`// qd-lint: allow(<rule>)`) are the engine's job, so rules stay
//! simple token-level checks. All rules skip `#[cfg(test)]` / `#[test]`
//! regions — the invariants protect production paths, and tests bang on
//! `unwrap()` and wall clocks legitimately.
//!
//! The registry is ordered and rendered by [`render_table`], which the
//! `--list-rules` flag prints and a doc test pins, so the documented
//! rule set cannot drift from the implemented one.

use crate::lexer::{find_token, LexedFile};

/// One rule family: its name (as used in configs and suppressions),
/// where the workspace config scopes it, and the invariant it encodes.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Config / suppression identifier.
    pub name: &'static str,
    /// Human description of the default scope.
    pub scope: &'static str,
    /// The invariant enforced.
    pub invariant: &'static str,
}

/// Every rule family, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "determinism",
        scope: "everywhere except bench / tests / examples",
        invariant: "no wall-clock, unseeded RNG or env reads in simulated paths",
    },
    Rule {
        name: "order-stability",
        scope: "fed / core / serve / unlearn / chaos sources",
        invariant: "no HashMap/HashSet where iteration order feeds aggregation",
    },
    Rule {
        name: "panic-safety",
        scope: "serving scopes + fns reachable from entry points",
        invariant: "no unwrap/expect/panic!/literal indexing in serving paths",
    },
    Rule {
        name: "durability",
        scope: "durable modules, checked across the call graph",
        invariant: "creates/writes paired with fsync (+rename) in the reachable component",
    },
    Rule {
        name: "lock-order",
        scope: "serve sources",
        invariant: "no two locks acquired in inconsistent order along any call path",
    },
    Rule {
        name: "vfs-discipline",
        scope: "core / serve sources outside the Vfs impl",
        invariant: "no direct std::fs calls; all storage I/O goes through qd_core::vfs",
    },
    Rule {
        name: "suppression-hygiene",
        scope: "workspace-wide",
        invariant: "qd-lint: allow(..) must name known rules",
    },
    Rule {
        name: "unsafe-hygiene",
        scope: "workspace-wide",
        invariant: "no unsafe code anywhere",
    },
];

/// Whether `name` is a registered rule family.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Renders the rule table exactly as `qd-lint --list-rules` prints it.
///
/// ```
/// let table = qd_lint::rules::render_table();
/// assert_eq!(table.lines().count(), qd_lint::rules::RULES.len() + 1);
/// assert!(table.starts_with("rule                | scope"));
/// ```
pub fn render_table() -> String {
    let mut out = format!("{:<19} | {:<48} | {}\n", "rule", "scope", "invariant");
    for rule in RULES {
        out.push_str(&format!(
            "{:<19} | {:<48} | {}\n",
            rule.name, rule.scope, rule.invariant
        ));
    }
    out
}

/// Runs the rule named `name` over `file`, returning 0-based line
/// numbers with messages. Unknown names return nothing (scoping decides
/// which rules exist; the engine only asks for registered names).
pub fn check(name: &str, file: &LexedFile) -> Vec<(usize, String)> {
    match name {
        "determinism" => check_tokens(
            file,
            &[
                "Instant::now",
                "SystemTime",
                "thread_rng",
                "from_entropy",
                "env::var",
                "env::vars",
                "var_os",
                "rand::random",
                "getrandom",
            ],
            |tok| format!("nondeterministic `{tok}` in a simulated/serving path"),
        ),
        "order-stability" => check_tokens(file, &["HashMap", "HashSet"], |tok| {
            format!("`{tok}` iteration order is unstable; use BTreeMap/BTreeSet")
        }),
        "panic-safety" => check_panic_safety(file),
        "durability" => check_durability(file),
        "vfs-discipline" => check_tokens(
            file,
            &[
                "File::create",
                "File::open",
                "OpenOptions",
                "fs::write",
                "fs::read",
                "fs::read_to_string",
                "fs::rename",
                "fs::remove_file",
                "fs::metadata",
                "read_dir",
            ],
            |tok| format!("direct `{tok}` bypasses the Vfs layer; route I/O through qd_core::vfs"),
        ),
        "unsafe-hygiene" => check_tokens(file, &["unsafe"], |_| {
            "`unsafe` is denied workspace-wide".to_string()
        }),
        "suppression-hygiene" => check_suppression_hygiene(file),
        // lock-order is interprocedural-only: it needs the workspace
        // call graph, so the engine runs it via `crate::interproc`.
        _ => Vec::new(),
    }
}

/// Every rule name appearing in `qd-lint: allow(..)` groups of a
/// comment, in order.
pub(crate) fn allow_names(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("qd-lint: allow(") {
        let args = &rest[at + "qd-lint: allow(".len()..];
        let Some(end) = args.find(')') else {
            break;
        };
        out.extend(
            args[..end]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string),
        );
        rest = &args[end + 1..];
    }
    out
}

/// Suppression hygiene: an `allow(<rule>)` naming an unknown rule is a
/// hard error, not a silent no-op — a typo in a suppression must not
/// quietly disable nothing while the author believes the finding is
/// covered. Applies to comments everywhere, test regions included.
fn check_suppression_hygiene(file: &LexedFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        for name in allow_names(&line.comment) {
            // Prose that *documents* the protocol writes placeholders —
            // `allow(<rule>)`, `allow(..)` — which are not identifiers
            // and could never have suppressed anything; only
            // identifier-shaped names are typo candidates.
            let ident_shaped = !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
            if ident_shaped && !is_rule(&name) {
                out.push((
                    i,
                    format!(
                        "unknown rule `{name}` in suppression; known rules: {}",
                        RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                    ),
                ));
            }
        }
    }
    out
}

/// The panic-capable tokens the panic-safety family bans, shared with
/// the reachability-scoped variant in [`crate::interproc`].
pub(crate) const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Panic-capable tokens present on a blanked code line: each banned
/// token that matches, plus a pseudo-token for literal indexing.
pub(crate) fn panic_tokens_on(code: &str) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = PANIC_TOKENS
        .iter()
        .copied()
        .filter(|tok| find_token(code, tok))
        .collect();
    if has_literal_index(code) {
        out.push("literal indexing");
    }
    out
}

fn check_tokens(
    file: &LexedFile,
    tokens: &[&str],
    message: impl Fn(&str) -> String,
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in tokens {
            if find_token(&line.code, tok) {
                out.push((i, message(tok)));
            }
        }
    }
    out
}

fn check_panic_safety(file: &LexedFile) -> Vec<(usize, String)> {
    let mut out = check_tokens(file, PANIC_TOKENS, |tok| {
        format!("`{tok}` can panic in a serving path; return a typed error")
    });
    for (i, line) in file.lines.iter().enumerate() {
        if !line.in_test && has_literal_index(&line.code) {
            out.push((
                i,
                "integer-literal indexing can panic in a serving path; use .get()".to_string(),
            ));
        }
    }
    out.sort_by_key(|&(line, _)| line);
    out
}

/// Detects `expr[<digits>]` — indexing an expression with an integer
/// literal, the lexically recognizable slice-panic shape. Array types
/// (`[u8; 4]`), array literals (`&[0]`) and attribute brackets are not
/// preceded by an expression, so they do not match.
fn has_literal_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        let indexes_expr = matches!(
            prev,
            Some(p) if p.is_ascii_alphanumeric() || *p == '_' || *p == ']' || *p == ')'
        );
        if !indexes_expr {
            continue;
        }
        let inner: String = chars[i + 1..].iter().take_while(|&&ch| ch != ']').collect();
        let inner = inner.trim();
        if !inner.is_empty() && inner.chars().all(|ch| ch.is_ascii_digit()) {
            return true;
        }
    }
    false
}

/// Durable-module discipline: every `fn` that calls `File::create` must
/// also fsync (`sync_all`/`sync_data`) and `rename` before returning —
/// the tmp+fsync+rename idiom that makes saves atomic. Checked at
/// function granularity so helper fns that only read are untouched.
fn check_durability(file: &LexedFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test || !find_token(&line.code, "File::create") {
            continue;
        }
        let (start, end) = file.enclosing_fn(i).unwrap_or((0, file.lines.len() - 1));
        let body = &file.lines[start..=end];
        let has = |tok: &str| body.iter().any(|l| find_token(&l.code, tok));
        let fsynced = has("sync_all") || has("sync_data");
        let renamed = has("rename");
        if !(fsynced && renamed) {
            let mut missing = Vec::new();
            if !fsynced {
                missing.push("fsync");
            }
            if !renamed {
                missing.push("rename");
            }
            out.push((
                i,
                format!(
                    "`File::create` without the tmp+fsync+rename idiom (missing {}) \
                     in a durable module",
                    missing.join("+")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn registry_and_table_agree() {
        let table = render_table();
        for rule in RULES {
            assert!(table.contains(rule.name), "table missing {}", rule.name);
        }
        assert_eq!(table.lines().count(), RULES.len() + 1);
    }

    #[test]
    fn literal_indexing_is_detected_conservatively() {
        assert!(has_literal_index("let x = bytes[5];"));
        assert!(has_literal_index("foo()[0]"));
        assert!(has_literal_index("grid[1][2]"));
        assert!(!has_literal_index("let t: [u8; 4] = x;"));
        assert!(!has_literal_index("let a = &[0];"));
        assert!(!has_literal_index("#[derive(Debug)]"));
        assert!(!has_literal_index("let y = map[key];"));
        assert!(!has_literal_index("let z = v[i + 1];"));
    }

    #[test]
    fn vfs_discipline_flags_direct_fs_but_not_prefixed_names() {
        let bad = lex("fn load() {\n let s = std::fs::read_to_string(p)?;\n}\n");
        let diags = check("vfs-discipline", &bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].1.contains("fs::read_to_string"));
        // `fs::read` must not also fire inside `fs::read_to_string`, and
        // Vfs-layer calls share no tokens with std::fs.
        let good =
            lex("fn load() {\n let s = vfs.read(path)?;\n vfs::atomic_write(fs, p, b)?;\n}\n");
        assert!(check("vfs-discipline", &good).is_empty());
    }

    #[test]
    fn durability_checks_at_fn_granularity() {
        let good = lex(
            "fn save() {\n let f = File::create(tmp);\n f.sync_all();\n \
                        fs::rename(tmp, path);\n}\n",
        );
        assert!(check("durability", &good).is_empty());
        let bad = lex("fn save() {\n let f = File::create(path);\n f.write_all(b);\n}\n");
        let diags = check("durability", &bad);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].1.contains("fsync+rename"));
    }
}
