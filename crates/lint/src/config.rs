//! `qd-lint.toml` parsing and path-scope matching.
//!
//! The analyzer stays dependency-free, so this module implements the
//! small TOML subset the config actually uses — tables, string values,
//! and single-line string arrays — rather than pulling in a parser:
//!
//! ```toml
//! [lint]
//! exclude = ["vendor/**", "target/**"]
//!
//! [rules.panic-safety]
//! include = ["crates/core/src/**", "crates/net/src/**"]
//! exclude = ["crates/core/src/bin/**"]
//! ```
//!
//! Scopes are glob patterns over `/`-separated relative paths: `*`
//! matches within one path segment, `**` matches any number of
//! segments. A rule with no `include` patterns applies everywhere; the
//! top-level `[lint] exclude` list removes files from every rule.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A rule's path scope: where it applies.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Globs a path must match (empty means "everywhere").
    pub include: Vec<String>,
    /// Globs that remove otherwise-included paths.
    pub exclude: Vec<String>,
}

impl RuleScope {
    /// Whether `path` (relative, `/`-separated) is in scope.
    pub fn applies_to(&self, path: &str) -> bool {
        let included = self.include.is_empty() || self.include.iter().any(|g| glob_match(g, path));
        included && !self.exclude.iter().any(|g| glob_match(g, path))
    }
}

/// Parsed analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files no rule ever sees (vendored code, build output, fixtures).
    pub exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule name. Rules absent from the map
    /// apply everywhere.
    pub rule_scopes: BTreeMap<String, RuleScope>,
    /// Named entry-point sets from `[entrypoints]`: set name to
    /// `::`-glob patterns over qualified function names, e.g.
    /// `serving = ["qd_serve::executor::run_service*"]`. Reachability
    /// rules start their traversal here.
    pub entrypoints: BTreeMap<String, Vec<String>>,
}

impl Config {
    /// Whether `path` is excluded from analysis entirely.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|g| glob_match(g, path))
    }

    /// The scope for `rule` (the everywhere-scope when unconfigured).
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rule_scopes.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending line for anything
    /// outside the supported subset.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| ConfigError {
                line: lineno + 1,
                msg: msg.to_string(),
            };
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err("unterminated section header"))?;
                if header != "lint"
                    && header != "entrypoints"
                    && header.strip_prefix("rules.").is_none()
                {
                    return Err(err("expected [lint], [entrypoints] or [rules.<name>]"));
                }
                section = Some(header.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected key = value"))?;
            let (key, value) = (key.trim(), value.trim());
            let values = parse_string_array(value)
                .ok_or_else(|| err("expected a string or a single-line array of strings"))?;
            match section.as_deref() {
                Some("lint") => match key {
                    "exclude" => config.exclude.extend(values),
                    _ => return Err(err("unknown [lint] key (expected exclude)")),
                },
                Some("entrypoints") => {
                    config
                        .entrypoints
                        .entry(key.to_string())
                        .or_default()
                        .extend(values);
                }
                Some(section) => {
                    let rule = section.trim_start_matches("rules.").to_string();
                    let scope = config.rule_scopes.entry(rule).or_default();
                    match key {
                        "include" => scope.include.extend(values),
                        "exclude" => scope.exclude.extend(values),
                        _ => return Err(err("unknown rule key (expected include/exclude)")),
                    }
                }
                None => return Err(err("key outside any section")),
            }
        }
        Ok(config)
    }

    /// Loads and parses a config file.
    ///
    /// # Errors
    ///
    /// I/O errors reading `path`, plus any [`ConfigError`] from parsing
    /// (converted to [`std::io::ErrorKind::InvalidData`]).
    pub fn load(path: &Path) -> std::io::Result<Config> {
        let text = std::fs::read_to_string(path)?;
        Config::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

/// A config line outside the supported TOML subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a"` or `["a", "b"]` into the list of strings.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = match value.strip_prefix('[') {
        Some(rest) => rest.strip_suffix(']')?.trim(),
        None => return parse_string(value).map(|s| vec![s]),
    };
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

fn parse_string(value: &str) -> Option<String> {
    value
        .strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

/// Glob match over `/`-separated paths: `**` spans segments, `*` spans
/// within a segment.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

/// Glob match over `::`-separated qualified names, with the same
/// semantics as [`glob_match`]: `**` spans segments, `*` spans within a
/// segment. Used for `[entrypoints]` patterns.
pub fn name_glob_match(pattern: &str, name: &str) -> bool {
    let pat: Vec<&str> = pattern.split("::").collect();
    let segs: Vec<&str> = name.split("::").collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            match_segments(&pat[1..], segs) || (!segs.is_empty() && match_segments(pat, &segs[1..]))
        }
        Some(p) => {
            !segs.is_empty()
                && match_one(p.as_bytes(), segs[0].as_bytes())
                && match_segments(&pat[1..], &segs[1..])
        }
    }
}

fn match_one(pat: &[u8], seg: &[u8]) -> bool {
    match pat.first() {
        None => seg.is_empty(),
        Some(b'*') => match_one(&pat[1..], seg) || (!seg.is_empty() && match_one(pat, &seg[1..])),
        Some(&c) => seg.first() == Some(&c) && match_one(&pat[1..], &seg[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs_match_segments_and_spans() {
        assert!(glob_match("crates/fed/src/**", "crates/fed/src/faults.rs"));
        assert!(glob_match("**/tests/**", "crates/net/tests/codec_props.rs"));
        assert!(glob_match("**/journal*.rs", "crates/core/src/journal.rs"));
        assert!(glob_match("vendor/**", "vendor/rand/src/lib.rs"));
        assert!(!glob_match("crates/fed/src/**", "crates/net/src/sim.rs"));
        assert!(!glob_match("**/tests/**", "crates/net/src/tests_helper.rs"));
        assert!(glob_match("src/*.rs", "src/lib.rs"));
        assert!(!glob_match("src/*.rs", "src/deep/lib.rs"));
    }

    #[test]
    fn config_parses_sections_scopes_and_comments() {
        let text = r##"
# workspace config
[lint]
exclude = ["vendor/**", "target/**"] # build output

[rules.panic-safety]
include = ["crates/core/src/**"]
exclude = ["crates/core/src/bin/**"]

[rules.unsafe-hygiene]
"##;
        let c = Config::parse(text).unwrap();
        assert!(c.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!c.is_excluded("crates/core/src/lib.rs"));
        let scope = c.scope("panic-safety");
        assert!(scope.applies_to("crates/core/src/system.rs"));
        assert!(!scope.applies_to("crates/core/src/bin/tool.rs"));
        assert!(!scope.applies_to("crates/net/src/sim.rs"));
        // Unscoped rules apply everywhere.
        assert!(c.scope("unsafe-hygiene").applies_to("anything/at/all.rs"));
        assert!(c.scope("never-mentioned").applies_to("anything/at/all.rs"));
    }

    #[test]
    fn entrypoints_parse_and_name_globs_match() {
        let text = r#"
[entrypoints]
serving = ["qd_serve::executor::run_service*", "qd_core::journal::**"]
admin = ["**::admin::main"]
"#;
        let c = Config::parse(text).unwrap();
        assert_eq!(c.entrypoints.len(), 2);
        let serving = &c.entrypoints["serving"];
        assert!(name_glob_match(
            &serving[0],
            "qd_serve::executor::run_service_isolated"
        ));
        assert!(!name_glob_match(
            &serving[0],
            "qd_serve::plan::run_service_isolated"
        ));
        assert!(name_glob_match(
            &serving[1],
            "qd_core::journal::QuickDrop::serve_batch_journaled"
        ));
        assert!(!name_glob_match(&serving[1], "qd_core::checkpoint::save"));
        assert!(name_glob_match(
            &c.entrypoints["admin"][0],
            "fixtures::graph::admin::main"
        ));
    }

    #[test]
    fn malformed_configs_name_the_line() {
        for bad in [
            "key_outside = \"x\"",
            "[lint]\nnope = \"x\"",
            "[weird]\n",
            "[rules.x]\ninclude = [unquoted]",
            "[rules.x\ninclude = []",
        ] {
            let err = Config::parse(bad).unwrap_err();
            assert!(err.line >= 1, "{err}");
        }
    }
}
