//! Fixture: a fully clean file — no rule may fire here.

use std::collections::BTreeMap;

fn stable_accumulation(weights: &BTreeMap<usize, f32>) -> f32 {
    let mut total = 0.0;
    for w in weights.values() {
        total += w;
    }
    total
}

fn safe_lookup(bytes: &[u8], i: usize) -> Option<u8> {
    bytes.get(i).copied()
}

fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
