//! Suppression-hygiene fixture: a typoed rule name in an allow is a
//! finding, not a silent no-op.

fn scratch() {
    let _x = maybe(); // qd-lint: allow(panik-safety) -- typo: must be flagged
}

// qd-lint: allow(suppression-hygiene) -- fixture: reviewed meta-allow
// qd-lint: allow(no-such-rule)
fn covered() {}
