//! Entry-point fixture: `handle_request` is declared in
//! `[entrypoints] serving`; the chain below reaches helper code that
//! lives outside every panic-safety path scope.

pub fn handle_request(req: &Request) -> f32 {
    stage_one(req)
}

fn stage_one(req: &Request) -> f32 {
    helpers::math::deep_mean(&req.samples)
}
