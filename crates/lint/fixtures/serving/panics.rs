//! Fixture: panic-safety violations (in scope via the serving tree).

fn violating_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION: panic-safety
}

fn violating_expect(x: Option<u32>) -> u32 {
    x.expect("always some") // VIOLATION: panic-safety
}

fn violating_panic(kind: u8) -> u8 {
    if kind > 3 {
        panic!("bad kind {kind}"); // VIOLATION: panic-safety
    }
    kind
}

fn violating_unreachable(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!(), // VIOLATION: panic-safety
    }
}

fn violating_index(bytes: &[u8]) -> u8 {
    bytes[5] // VIOLATION: panic-safety (literal indexing)
}

fn suppressed_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // qd-lint: allow(panic-safety) -- checked non-empty by caller
}

fn suppressed_panic() {
    // qd-lint: allow(panic-safety) -- validation panic documented in rustdoc
    panic!("documented validation failure");
}

fn fine_patterns(bytes: &[u8], i: usize) -> Option<u8> {
    let _ = "unwrap() panic! in a string is fine";
    let arr: [u8; 2] = [0, 1]; // array type + literal, not indexing
    let _ = arr;
    bytes.get(i).copied() // .get never panics
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // out of scope: test region
    }
}
