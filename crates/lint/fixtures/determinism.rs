//! Fixture: determinism violations (in scope for the determinism rule).

use std::time::{Instant, SystemTime};

fn violating_wall_clock() -> Instant {
    Instant::now() // VIOLATION: determinism
}

fn violating_epoch() -> SystemTime {
    SystemTime::now() // VIOLATION: determinism (SystemTime)
}

fn violating_rng() -> u64 {
    let mut rng = rand::thread_rng(); // VIOLATION: determinism
    rng.next_u64()
}

fn violating_env() -> Option<String> {
    std::env::var("QD_SEED").ok() // VIOLATION: determinism
}

fn suppressed_wall_clock() -> Instant {
    // qd-lint: allow(determinism) -- accounting-only, never feeds control flow
    Instant::now()
}

fn tokens_in_strings_do_not_count() -> &'static str {
    let _ = "Instant::now() thread_rng() SystemTime env::var";
    let _ = r#"Instant::now() inside a raw string"#;
    /* Instant::now() inside a block comment
       /* nested: thread_rng() */ still a comment */
    "clean" // mentions SystemTime in a comment, which is fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_wall_clock() {
        let _ = std::time::Instant::now(); // out of scope: test region
    }
}
