//! Lock-order fixture: `forward` takes queue → slots, while
//! `backward_via_helper` ends up taking slots → queue through a
//! callee — an interleaving deadlock, flagged at both witnesses.

pub fn forward(shared: &Shared) {
    let q = shared.queue.lock();
    let s = shared.slots.lock();
    consume(q, s);
}

pub fn backward_via_helper(shared: &Shared) {
    let s = shared.slots.lock();
    grab_queue(shared);
}

fn grab_queue(shared: &Shared) {
    let _q = shared.queue.lock();
}

pub fn consistent(shared: &Shared) {
    let q = shared.queue.lock();
    let s = shared.slots.lock();
    consume(q, s);
}
