//! Fixture: unsafe-hygiene violations (workspace-wide rule).

fn violating_block(p: *const u32) -> u32 {
    unsafe { *p } // VIOLATION: unsafe-hygiene
}

unsafe fn violating_fn() {} // VIOLATION: unsafe-hygiene

// qd-lint: allow(unsafe-hygiene) -- fixture demonstrating suppression
unsafe fn suppressed_fn() {}

fn words_do_not_count() -> &'static str {
    let unsafe_adjacent = "unsafe in a string";
    unsafe_adjacent // identifier containing the word is fine
}
