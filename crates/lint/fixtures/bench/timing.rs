//! Fixture: out-of-scope for determinism (bench tree) — wall-clock
//! reads here are the whole point and must not be flagged.

fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    work();
    start.elapsed()
}

fn work() {}
