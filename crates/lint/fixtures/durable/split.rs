//! Interprocedural durability fixture: the create/fsync/rename triple
//! is legitimately split across helpers in `save_good`; `save_bad`'s
//! reachable component never fsyncs.

pub fn save_good(state: &State) {
    let file = File::create(tmp_path());
    write_payload(&file, state);
    finish_swap(file);
}

fn finish_swap(file: File) {
    file.sync_all();
    fs::rename(tmp_path(), final_path());
}

fn write_payload(file: &File, state: &State) {
    file.write_all(&state.bytes);
}

pub fn save_bad(state: &State) {
    let file = File::create(scratch_path());
    spill(&file, state);
}

fn spill(file: &File, state: &State) {
    file.write_all(&state.bytes);
}
