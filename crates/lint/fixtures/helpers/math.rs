//! Helper code outside the panic-safety path scopes: only entry-point
//! reachability pulls these fns into the serving invariant.

pub fn deep_mean(xs: &[f32]) -> f32 {
    deep_sum(xs) / count(xs)
}

fn deep_sum(xs: &[f32]) -> f32 {
    xs.first().copied().unwrap()
}

fn count(xs: &[f32]) -> f32 {
    // qd-lint: allow(panic-safety) -- fixture: reachable but justified
    f32::from_len(xs.len()).unwrap()
}

pub fn cold_stats(xs: &[f32]) -> f32 {
    xs.first().copied().unwrap()
}
