//! Fixture: vfs-discipline violations (in scope as a core source).

fn read_config(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path) // VIOLATION: vfs-discipline
}

fn save_raw(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes) // VIOLATION: vfs-discipline
}

fn open_handle(path: &str) -> std::io::Result<std::fs::File> {
    std::fs::File::open(path) // VIOLATION: vfs-discipline
}

fn remove(path: &str) -> std::io::Result<()> {
    std::fs::remove_file(path) // VIOLATION: vfs-discipline
}

fn suppressed_probe(path: &str) -> bool {
    // qd-lint: allow(vfs-discipline) -- startup probe, loss is harmless
    std::fs::metadata(path).is_ok()
}
