//! Fixture: the Vfs implementation itself is carved out of
//! vfs-discipline by the config's `exclude`, because it is the one
//! translation layer allowed to touch `std::fs` directly.

fn std_fs_write(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes) // ok: this file is the Vfs impl
}
