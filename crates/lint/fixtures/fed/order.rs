//! Fixture: order-stability violations (in scope via the fed tree).

use std::collections::HashMap; // VIOLATION: order-stability
use std::collections::HashSet; // VIOLATION: order-stability

fn unstable_accumulation(weights: HashMap<usize, f32>) -> f32 {
    // VIOLATION above (signature) is what the rule reports per line;
    // iteration below is the actual hazard.
    let mut total = 0.0;
    for (_, w) in &weights {
        total += w;
    }
    total
}

fn quarantine(ids: HashSet<usize>) -> usize {
    ids.len()
}

// qd-lint: allow(order-stability) -- keyed lookups only, never iterated
fn suppressed_map(cache: HashMap<u64, u64>, key: u64) -> Option<u64> {
    cache.get(&key).copied()
}

fn strings_do_not_count() -> &'static str {
    "HashMap and HashSet in a string are fine"
}
