//! Fixture: durability violations (in scope by file name).

use std::fs::File;
use std::io::Write;

fn violating_save(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?; // VIOLATION: durability (no fsync, no rename)
    f.write_all(bytes)?;
    Ok(())
}

fn violating_no_rename(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?; // VIOLATION: durability (missing rename)
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

fn durable_save(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    let mut f = File::create(&tmp)?; // ok: tmp + fsync + rename idiom
    f.write_all(bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

fn suppressed_scratch(path: &str) -> std::io::Result<()> {
    // qd-lint: allow(durability) -- scratch file, loss on crash is fine
    let _ = File::create(path)?;
    Ok(())
}
