//! Storage half of the pinned graph fixture: `persist` is reachable
//! from the entry point, `offline_compact` is not.

pub fn persist(state: &State) {
    encode(state);
}

fn encode(_state: &State) {}

pub fn offline_compact(state: &mut State) {
    encode(state);
}
