//! Tiny clean workspace whose call graph is pinned byte-for-byte as
//! `fixtures/graph.dot` (see scripts/check.sh and tests/fixtures.rs).

pub fn serve_tick(state: &mut State) {
    refresh(state);
    persist(state);
}

fn refresh(state: &mut State) {
    state.apply(delta());
}
