//! Scenario: collaborating hospitals discover a mislabeled diagnostic
//! category and must purge it from their jointly trained model.
//!
//! Ten hospitals train an image classifier with federated learning (their
//! scans never leave the premises). An audit reveals that one diagnostic
//! category — class 7 — was systematically mislabeled by a faulty
//! annotation pipeline and must be removed from the model. Retraining
//! from scratch would stall the deployment for hours; QuickDrop serves
//! the request from each hospital's tiny synthetic dataset instead, and
//! we compare both routes.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example hospital_class_unlearning
//! ```

use quickdrop::{
    fr_eval_sets, partition_dirichlet, split_accuracy, ConvNet, Federation, Module, Phase,
    QuickDrop, QuickDropConfig, RetrainOracle, Rng, SyntheticDataset, UnlearnRequest,
    UnlearningMethod,
};
use std::sync::Arc;

fn main() {
    let mut rng = Rng::seed_from(2024);
    let dataset = SyntheticDataset::Cifar; // stands in for the scan corpus

    // Hospitals hold very different case mixes: Dirichlet(0.1).
    let train = dataset.generate(1000, &mut rng);
    let test = dataset.generate(400, &mut rng);
    let parts = partition_dirichlet(train.labels(), train.classes(), 10, 0.1, &mut rng);
    let clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();
    for (i, c) in clients.iter().enumerate() {
        println!(
            "hospital {i:>2}: {:>4} scans, class mix {:?}",
            c.len(),
            c.class_counts()
        );
    }

    let model: Arc<dyn Module> = Arc::new(ConvNet::scaled_default(dataset.channels(), 10));
    let mut fed = Federation::new(model.clone(), clients, &mut rng);

    // Joint training with in-situ distillation.
    let mut config = QuickDropConfig::paper_shaped(8, 8, 32, 0.08);
    config.distill.scale = 50;
    config.distill.classes_per_step = 2;
    config.distill.lr_syn = 0.5;
    config.unlearn_phase = Phase::unlearning(1, 6, 32, 0.04);
    let (mut quickdrop, _) = QuickDrop::train(&mut fed, config, &mut rng);
    let trained = fed.global().to_vec();

    let faulty_class = 7;
    let request = UnlearnRequest::Class(faulty_class);
    let (f_set, r_set) = fr_eval_sets(&fed, request, &test);

    // Route A: QuickDrop.
    let outcome = quickdrop.unlearn(&mut fed, request, &mut rng);
    let (f_qd, r_qd) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);
    let t_qd = outcome.total().wall;

    // Route B: the retraining oracle, for reference.
    fed.set_global(trained);
    let mut oracle = RetrainOracle::new(Phase::training(8, 8, 32, 0.08));
    let oracle_outcome = oracle.unlearn(&mut fed, request, &mut rng);
    let (f_or, r_or) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);
    let t_or = oracle_outcome.total().wall;

    println!("\npurging mislabeled class {faulty_class}:");
    println!(
        "  QuickDrop : forget {:.1}%, retain {:.1}%, {:>8.2}s",
        f_qd * 100.0,
        r_qd * 100.0,
        t_qd.as_secs_f64()
    );
    println!(
        "  Retrain   : forget {:.1}%, retain {:.1}%, {:>8.2}s",
        f_or * 100.0,
        r_or * 100.0,
        t_or.as_secs_f64()
    );
    println!(
        "  speedup   : {:.0}x",
        t_or.as_secs_f64() / t_qd.as_secs_f64().max(1e-9)
    );
}
