//! Scenario: a stream of unlearning requests, one of which is later
//! revoked and relearned — the operational regime QuickDrop is built for
//! (its training-time investment amortizes over many requests).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example sequential_requests
//! ```

use quickdrop::{
    partition_dirichlet, per_class_accuracy, Federation, Mlp, Module, QuickDrop, QuickDropConfig,
    Rng, SyntheticDataset, UnlearnRequest, UnlearningMethod,
};
use std::sync::Arc;
use std::time::Duration;

fn show(label: &str, acc: &[f32]) {
    let cells: Vec<String> = acc.iter().map(|a| format!("{:>4.0}", a * 100.0)).collect();
    println!("{label:<28} [{}]", cells.join(" "));
}

fn main() {
    let mut rng = Rng::seed_from(99);
    let dataset = SyntheticDataset::Digits;
    let train = dataset.generate(900, &mut rng);
    let test = dataset.generate(500, &mut rng);
    let parts = partition_dirichlet(train.labels(), train.classes(), 5, 0.5, &mut rng);
    let clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();

    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
    let mut fed = Federation::new(model.clone(), clients, &mut rng);
    let mut config = QuickDropConfig::scaled_test();
    config.train_phase = quickdrop::Phase::training(10, 8, 32, 0.1);
    config.unlearn_phase = quickdrop::Phase::unlearning(1, 4, 32, 0.03);
    config.recover_phase = quickdrop::Phase::training(3, 8, 32, 0.1);
    config.relearn_phase = quickdrop::Phase::training(3, 8, 32, 0.1);
    config.max_unlearn_rounds = 4;
    let (mut quickdrop, _) = QuickDrop::train(&mut fed, config, &mut rng);

    println!("per-class accuracy (columns = classes 0..9):");
    show(
        "trained",
        &per_class_accuracy(model.as_ref(), fed.global(), &test),
    );

    // A stream of requests arrives over time.
    let mut served = Duration::ZERO;
    for class in [4usize, 1, 8] {
        let outcome = quickdrop.unlearn(&mut fed, UnlearnRequest::Class(class), &mut rng);
        served += outcome.total().wall;
        show(
            &format!("after unlearning class {class}"),
            &per_class_accuracy(model.as_ref(), fed.global(), &test),
        );
    }

    // The owner of the class-1 data withdraws their request: relearn it
    // from the synthetic data alone.
    let phase = quickdrop.config().relearn_phase;
    let stats = quickdrop
        .relearn(&mut fed, UnlearnRequest::Class(1), &phase, &mut rng)
        .expect("QuickDrop supports relearning");
    served += stats.wall;
    show(
        "after relearning class 1",
        &per_class_accuracy(model.as_ref(), fed.global(), &test),
    );

    println!(
        "\nserved 3 unlearning requests + 1 relearning request in {:.0}ms total;",
        served.as_secs_f64() * 1000.0
    );
    println!("classes 4 and 8 stay forgotten, class 1 is back, the rest never left.");
}
