//! Scenario: bring your own architecture.
//!
//! QuickDrop is architecture-agnostic: anything implementing
//! `qd_nn::Module` can be trained, distilled against, unlearned and
//! relearned — including models with max pooling and saturating
//! activations, whose gradient paths differ from the paper's ConvNet.
//! This example runs the full pipeline on a LeNet-style network.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example custom_architecture
//! ```

use quickdrop::{
    accuracy, fr_eval_sets, partition_dirichlet, split_accuracy, Federation, LeNet, Module,
    QuickDrop, QuickDropConfig, Rng, SyntheticDataset, UnlearnRequest, UnlearningMethod,
};
use std::sync::Arc;

fn main() {
    let mut rng = Rng::seed_from(5);
    let dataset = SyntheticDataset::Digits;
    let train = dataset.generate(700, &mut rng);
    let test = dataset.generate(300, &mut rng);
    let parts = partition_dirichlet(train.labels(), train.classes(), 4, 0.5, &mut rng);
    let clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();

    // Any Module works; LeNet here (conv/tanh/max-pool blocks).
    let model: Arc<dyn Module> = Arc::new(LeNet::new(dataset.channels(), dataset.hw(), 10));
    let mut fed = Federation::new(model.clone(), clients, &mut rng);

    let mut config = QuickDropConfig::scaled_test();
    config.train_phase = quickdrop::Phase::training(8, 8, 32, 0.1);
    config.unlearn_phase = quickdrop::Phase::unlearning(1, 4, 32, 0.03);
    config.recover_phase = quickdrop::Phase::training(2, 8, 32, 0.1);
    config.max_unlearn_rounds = 4;
    let (mut qd, report) = QuickDrop::train(&mut fed, config, &mut rng);
    println!(
        "LeNet federation trained: test accuracy {:.1}%, DD overhead {:.0}%",
        accuracy(model.as_ref(), fed.global(), &test) * 100.0,
        report.dd_overhead() * 100.0
    );

    let request = UnlearnRequest::Class(6);
    let (f, r) = fr_eval_sets(&fed, request, &test);
    let (f0, r0) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
    let outcome = qd.unlearn(&mut fed, request, &mut rng);
    let (f1, r1) = split_accuracy(model.as_ref(), fed.global(), &f, &r);
    println!(
        "unlearned class 6 in {:.0}ms ({} ascent rounds):",
        outcome.total().wall.as_secs_f64() * 1000.0,
        outcome.unlearn.rounds
    );
    println!("  forget {:.1}% -> {:.1}%", f0 * 100.0, f1 * 100.0);
    println!("  retain {:.1}% -> {:.1}%", r0 * 100.0, r1 * 100.0);
    println!(
        "  communication: {} scalars exchanged (vs {} for one training round sweep)",
        outcome.total().communication_scalars(),
        report.fl_stats.communication_scalars() / report.fl_stats.rounds.max(1)
    );
}
