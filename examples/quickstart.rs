//! Quickstart: train a federated model with in-situ distillation, then
//! serve one class-level unlearning request in milliseconds.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quickdrop::{
    accuracy, fr_eval_sets, partition_dirichlet, split_accuracy, Federation, Mlp, Module,
    QuickDrop, QuickDropConfig, Rng, SyntheticDataset, UnlearnRequest, UnlearningMethod,
};
use std::sync::Arc;

fn main() {
    let mut rng = Rng::seed_from(42);

    // 1. Data: an MNIST-like synthetic dataset split non-IID across 4
    //    clients (Dirichlet alpha = 0.5).
    let dataset = SyntheticDataset::Digits;
    let train = dataset.generate(800, &mut rng);
    let test = dataset.generate(400, &mut rng);
    let parts = partition_dirichlet(train.labels(), train.classes(), 4, 0.5, &mut rng);
    let clients = parts.iter().map(|p| train.subset(p)).collect();

    // 2. Model + federation.
    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[256, 32, 10]));
    let mut fed = Federation::new(model.clone(), clients, &mut rng);

    // 3. FL training with in-situ synthetic data generation (steps 1-2 of
    //    the QuickDrop workflow).
    let mut config = QuickDropConfig::scaled_test();
    config.train_phase = quickdrop::Phase::training(8, 8, 32, 0.1);
    config.unlearn_phase = quickdrop::Phase::unlearning(1, 4, 32, 0.03);
    config.recover_phase = quickdrop::Phase::training(2, 8, 32, 0.1);
    let (mut quickdrop, report) = QuickDrop::train(&mut fed, config, &mut rng);
    println!(
        "trained: test accuracy {:.1}%, synthetic storage {:.1}% of original, \
         distillation overhead {:.0}% of training compute",
        accuracy(model.as_ref(), fed.global(), &test) * 100.0,
        report.storage_fraction() * 100.0,
        report.dd_overhead() * 100.0
    );

    // Peek at what was distilled: client 0's synthetic samples.
    let syn_preview = quickdrop.synthetic_sets()[0].to_dataset();
    println!(
        "\nclient 0's distilled synthetic samples (compressed gradient store):\n{}",
        quickdrop::ascii_samples(&syn_preview, 5)
    );

    // 4. An unlearning request arrives for class 3.
    let request = UnlearnRequest::Class(3);
    let (f_set, r_set) = fr_eval_sets(&fed, request, &test);
    let (f0, r0) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);
    let outcome = quickdrop.unlearn(&mut fed, request, &mut rng);
    let (f1, r1) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);
    println!(
        "unlearned class 3 in {:.0}ms touching {} synthetic samples:",
        outcome.total().wall.as_secs_f64() * 1000.0,
        outcome.unlearn.data_size + outcome.recovery.data_size
    );
    println!(
        "  forget-set accuracy {:.1}% -> {:.1}%",
        f0 * 100.0,
        f1 * 100.0
    );
    println!(
        "  retain-set accuracy {:.1}% -> {:.1}%",
        r0 * 100.0,
        r1 * 100.0
    );
}
