//! Scenario: a client exercises the GDPR right to be forgotten, and the
//! unlearning is audited with a membership-inference attack.
//!
//! Eight edge devices train a shared classifier. Device 2's owner revokes
//! consent; the server must erase that device's contribution. We unlearn
//! with QuickDrop (client-level request) and audit the result the way the
//! paper's Figure 3 does: a loss-threshold membership attack should stop
//! recognizing the forgotten device's samples as training members.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example right_to_be_forgotten
//! ```

use quickdrop::{
    fr_eval_sets, partition_dirichlet, split_accuracy, Federation, MiaAttack, Mlp, Module,
    QuickDrop, QuickDropConfig, Rng, SyntheticDataset, UnlearnRequest, UnlearningMethod,
};
use std::sync::Arc;

fn main() {
    let mut rng = Rng::seed_from(7);
    let dataset = SyntheticDataset::Svhn;
    let train = dataset.generate(900, &mut rng);
    let test = dataset.generate(400, &mut rng);
    let parts = partition_dirichlet(train.labels(), train.classes(), 8, 0.1, &mut rng);
    let clients: Vec<_> = parts.iter().map(|p| train.subset(p)).collect();

    let model: Arc<dyn Module> = Arc::new(Mlp::new(&[dataset.channels() * 256, 64, 10]));
    let mut fed = Federation::new(model.clone(), clients, &mut rng);

    let mut config = QuickDropConfig::scaled_test();
    config.train_phase = quickdrop::Phase::training(10, 8, 32, 0.1);
    let (mut quickdrop, _) = QuickDrop::train(&mut fed, config, &mut rng);

    let leaving = 2usize;
    let request = UnlearnRequest::Client(leaving);
    let (f_set, r_set) = fr_eval_sets(&fed, request, &test);

    // Audit before: the attack is calibrated on retained members vs
    // held-out samples, then asked about the leaving device's data.
    let audit = |params: &[quickdrop::Tensor]| -> (f32, f32) {
        let attack = MiaAttack::fit_on_model(model.as_ref(), params, &r_set, &test);
        (
            attack.member_rate_on(model.as_ref(), params, &f_set),
            attack.member_rate_on(model.as_ref(), params, &r_set),
        )
    };
    let (f_mia_before, r_mia_before) = audit(fed.global());
    let (f_acc_before, r_acc_before) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);

    let outcome = quickdrop.unlearn(&mut fed, request, &mut rng);
    let (f_mia_after, r_mia_after) = audit(fed.global());
    let (f_acc_after, r_acc_after) = split_accuracy(model.as_ref(), fed.global(), &f_set, &r_set);

    println!("device {leaving} exercised the right to be forgotten");
    println!(
        "  served in {:.0}ms over {} synthetic samples",
        outcome.total().wall.as_secs_f64() * 1000.0,
        outcome.unlearn.data_size
    );
    println!(
        "  accuracy   on their data: {:.1}% -> {:.1}% (others: {:.1}% -> {:.1}%)",
        f_acc_before * 100.0,
        f_acc_after * 100.0,
        r_acc_before * 100.0,
        r_acc_after * 100.0
    );
    println!(
        "  MIA member-rate on their data: {:.1}% -> {:.1}% (others: {:.1}% -> {:.1}%)",
        f_mia_before * 100.0,
        f_mia_after * 100.0,
        r_mia_before * 100.0,
        r_mia_after * 100.0
    );
    println!("  (a drop in the forgotten device's member-rate means the attack can");
    println!("   no longer tell their samples were ever used for training)");
}
